use std::error::Error;
use std::fmt;

/// Error returned when tensor shapes are inconsistent with an operation.
///
/// # Example
///
/// ```
/// use adq_tensor::Tensor;
///
/// let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a shape error with a human-readable description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Convenience constructor for an element-count mismatch.
    pub fn element_count(expected: usize, actual: usize) -> Self {
        Self::new(format!("expected {expected} elements, got {actual}"))
    }

    /// Convenience constructor for a dimension mismatch between two shapes.
    pub fn mismatch(context: &str, lhs: &[usize], rhs: &[usize]) -> Self {
        Self::new(format!(
            "{context}: incompatible shapes {lhs:?} and {rhs:?}"
        ))
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ShapeError {}

/// Computes the number of elements implied by a shape (empty shape = scalar = 1).
pub(crate) fn element_count(dims: &[usize]) -> usize {
    dims.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_count_of_empty_shape_is_one() {
        assert_eq!(element_count(&[]), 1);
    }

    #[test]
    fn element_count_multiplies_dims() {
        assert_eq!(element_count(&[2, 3, 4]), 24);
    }

    #[test]
    fn element_count_with_zero_dim_is_zero() {
        assert_eq!(element_count(&[2, 0, 4]), 0);
    }

    #[test]
    fn display_contains_counts() {
        let err = ShapeError::element_count(4, 3);
        assert_eq!(err.to_string(), "expected 4 elements, got 3");
    }

    #[test]
    fn mismatch_mentions_both_shapes() {
        let err = ShapeError::mismatch("add", &[2, 2], &[3]);
        let text = err.to_string();
        assert!(text.contains("[2, 2]") && text.contains("[3]"));
    }

    #[test]
    fn shape_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
