use adq_quant::HwPrecision;
use serde::{Deserialize, Serialize};

/// Activity counters of a bit-serial MAC computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacStats {
    /// 1-bit multiply-and-read cell operations (array activity).
    pub cell_ops: u64,
    /// Shift-and-add operations in the accumulator tree.
    pub shift_adds: u64,
    /// Bit-serial cycles (one activation bit-plane per cycle).
    pub cycles: u64,
}

impl MacStats {
    /// Merges counters (e.g. across layer tiles).
    pub fn merge(&mut self, other: &MacStats) {
        self.cell_ops += other.cell_ops;
        self.shift_adds += other.shift_adds;
        self.cycles += other.cycles;
    }
}

/// Bit-exact behavioural simulation of the PIM datapath for one dot
/// product.
///
/// Weights are stored bit-sliced across array columns; activations stream
/// in bit-serially. Each cycle, every cell ANDs its stored weight bit with
/// the broadcast activation bit; the column sums (popcounts) are then
/// shifted by the combined significance and accumulated — exactly what the
/// Shift-Accumulator block of Fig 5 does in hardware.
///
/// # Example
///
/// ```
/// use adq_pim::BitSerialMac;
/// use adq_quant::HwPrecision;
///
/// let mac = BitSerialMac::new(HwPrecision::B8);
/// let (value, _) = mac.dot(&[200, 13], &[77, 255]);
/// assert_eq!(value, 200 * 77 + 13 * 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSerialMac {
    precision: HwPrecision,
}

impl BitSerialMac {
    /// Creates a MAC unit operating at the given precision.
    pub fn new(precision: HwPrecision) -> Self {
        Self { precision }
    }

    /// The operating precision.
    pub fn precision(&self) -> HwPrecision {
        self.precision
    }

    /// Computes `Σ wᵢ·aᵢ` over unsigned codes, the way the hardware does:
    /// per (weight-bit, activation-bit) plane, AND + popcount + shift.
    ///
    /// Returns the exact integer result and the activity statistics.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or any code does not fit
    /// in the operating precision.
    pub fn dot(&self, weights: &[u64], activations: &[u64]) -> (u128, MacStats) {
        assert_eq!(
            weights.len(),
            activations.len(),
            "weight/activation length mismatch"
        );
        let k = self.precision.bits();
        let limit = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        for &w in weights {
            assert!(w <= limit, "weight code {w} exceeds {k}-bit range");
        }
        for &a in activations {
            assert!(a <= limit, "activation code {a} exceeds {k}-bit range");
        }
        let mut acc: u128 = 0;
        let mut stats = MacStats::default();
        // activation bits stream in serially: one cycle per bit-plane
        for a_bit in 0..k {
            stats.cycles += 1;
            for w_bit in 0..k {
                // every occupied cell performs a 1-bit multiply each cycle
                stats.cell_ops += weights.len() as u64;
                let mut popcount: u128 = 0;
                for (&w, &a) in weights.iter().zip(activations) {
                    let bit = ((w >> w_bit) & 1) & ((a >> a_bit) & 1);
                    popcount += u128::from(bit);
                }
                // shift by combined significance and accumulate
                acc += popcount << (w_bit + a_bit);
                stats.shift_adds += 1;
            }
        }
        (acc, stats)
    }

    /// Reference (non-bit-serial) dot product, for verification.
    pub fn dot_reference(weights: &[u64], activations: &[u64]) -> u128 {
        weights
            .iter()
            .zip(activations)
            .map(|(&w, &a)| u128::from(w) * u128::from(a))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn matches_reference_all_precisions() {
        let mut rng = rand_chacha::ChaCha8Rng::from_seed_u64(1);
        for p in HwPrecision::ALL {
            let mac = BitSerialMac::new(p);
            let limit = (1u64 << p.bits()) - 1;
            for _ in 0..20 {
                let n = rng.gen_range(1..16);
                let w: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=limit)).collect();
                let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=limit)).collect();
                let (value, _) = mac.dot(&w, &a);
                assert_eq!(value, BitSerialMac::dot_reference(&w, &a), "precision {p}");
            }
        }
    }

    #[test]
    fn empty_dot_is_zero() {
        let mac = BitSerialMac::new(HwPrecision::B4);
        let (value, stats) = mac.dot(&[], &[]);
        assert_eq!(value, 0);
        assert_eq!(stats.cell_ops, 0);
        // cycles still elapse for the bit-serial stream
        assert_eq!(stats.cycles, 4);
    }

    #[test]
    fn max_codes_do_not_overflow() {
        let mac = BitSerialMac::new(HwPrecision::B16);
        let w = vec![u64::from(u16::MAX); 8];
        let a = vec![u64::from(u16::MAX); 8];
        let (value, _) = mac.dot(&w, &a);
        assert_eq!(value, 8 * u128::from(u16::MAX) * u128::from(u16::MAX));
    }

    #[test]
    fn cycles_equal_activation_bits() {
        for p in HwPrecision::ALL {
            let mac = BitSerialMac::new(p);
            let (_, stats) = mac.dot(&[1], &[1]);
            assert_eq!(stats.cycles, u64::from(p.bits()));
        }
    }

    #[test]
    fn cell_ops_scale_quadratically_with_precision() {
        let (_, s2) = BitSerialMac::new(HwPrecision::B2).dot(&[1, 1], &[1, 1]);
        let (_, s4) = BitSerialMac::new(HwPrecision::B4).dot(&[1, 1], &[1, 1]);
        // k² scaling: 4 bits -> 4x the cell ops of 2 bits
        assert_eq!(s4.cell_ops, 4 * s2.cell_ops);
    }

    #[test]
    #[should_panic]
    fn oversized_code_panics() {
        BitSerialMac::new(HwPrecision::B2).dot(&[4], &[1]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        BitSerialMac::new(HwPrecision::B2).dot(&[1], &[1, 2]);
    }

    #[test]
    fn stats_merge_adds() {
        let mut a = MacStats {
            cell_ops: 1,
            shift_adds: 2,
            cycles: 3,
        };
        a.merge(&MacStats {
            cell_ops: 10,
            shift_adds: 20,
            cycles: 30,
        });
        assert_eq!(a.cell_ops, 11);
        assert_eq!(a.shift_adds, 22);
        assert_eq!(a.cycles, 33);
    }

    // tiny seeded-RNG shim so this test module does not need adq-tensor
    trait SeedU64 {
        fn from_seed_u64(seed: u64) -> Self;
    }
    impl SeedU64 for rand_chacha::ChaCha8Rng {
        fn from_seed_u64(seed: u64) -> Self {
            use rand::SeedableRng;
            rand_chacha::ChaCha8Rng::seed_from_u64(seed)
        }
    }
}
