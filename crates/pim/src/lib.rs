//! Process-In-Memory (PIM) accelerator model — §V of the paper.
//!
//! The paper's accelerator (its Fig 5) has three sections:
//!
//! 1. an **input decoder** that streams layer `l−1` activations into the
//!    array in a structured pattern,
//! 2. a **PIM block**: a 2-D array of 1-bit SRAM memory-and-multiply cells,
//!    each computing a 1-bit product between an input activation bit and a
//!    stored weight bit,
//! 3. a **shift-accumulator block**: a hierarchy of accumulators (4-bit at
//!    the lowest level, then 8-bit, then 16-bit) that shift-and-add the
//!    1-bit products into multi-bit MACs. The level a layer uses is selected
//!    by its precision; only {2, 4, 8, 16}-bit operation is supported.
//!
//! This crate provides:
//!
//! * [`BitSerialMac`] — a *bit-exact* behavioural simulation of the
//!   array + shift-accumulate datapath (dot products decomposed into
//!   bit-plane AND/popcount/shift operations), with cycle and bit-operation
//!   statistics,
//! * [`ShiftAccumulatorTree`] — the accumulator-hierarchy activity model,
//! * [`PimEnergyModel`] — per-MAC energies; defaults are exactly Table IV,
//! * [`PimArray`]/[`LayerMapping`]/[`NetworkEnergyReport`] — mapping whole
//!   layers and networks onto the accelerator (Tables V and VI).
//!
//! # Example
//!
//! ```
//! use adq_pim::{BitSerialMac, PimEnergyModel};
//! use adq_quant::HwPrecision;
//!
//! // 4-bit dot product computed the way the hardware does it
//! let mac = BitSerialMac::new(HwPrecision::B4);
//! let (value, stats) = mac.dot(&[3, 15, 7], &[2, 1, 4]);
//! assert_eq!(value, 3 * 2 + 15 * 1 + 7 * 4);
//! assert!(stats.cell_ops > 0);
//!
//! // Table IV energy
//! let energy = PimEnergyModel::paper_table4();
//! assert_eq!(energy.mac_fj(HwPrecision::B2), 2.942);
//! ```

mod array;
mod energy;
mod inference;
mod mac;
mod tree;
mod xnor;

pub use array::{LayerMapping, NetworkEnergyReport, PimArray};
pub use energy::PimEnergyModel;
pub use inference::{QuantizedConv2d, QuantizedLinear};
pub use mac::{BitSerialMac, MacStats};
pub use tree::{AccLevel, ShiftAccumulatorTree};
pub use xnor::XnorMac;
