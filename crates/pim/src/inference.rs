//! Integer inference — running quantized layers the way the accelerator
//! does: integer code arithmetic plus one affine correction per output,
//! instead of fake-quantized floating point.
//!
//! For a uniform affine quantizer `x = x_min + c·s`, a dot product of
//! quantized weights and activations expands to
//!
//! ```text
//! Σ fq(w)·fq(a) = s_w·s_a·Σ c_w·c_a
//!               + w_min·s_a·Σ c_a + a_min·s_w·Σ c_w + n·w_min·a_min
//! ```
//!
//! so the hardware only needs the integer term `Σ c_w·c_a` (what the PIM
//! array computes) plus cheap code sums. Zero padding contributes exactly
//! zero and is excluded from the sums (`n` counts valid taps only), matching
//! the float reference bit-for-bit up to f32 rounding.

use adq_quant::{HwPrecision, QuantError, Quantizer};
use adq_tensor::{Conv2dGeom, Tensor};
use serde::{Deserialize, Serialize};

use crate::mac::MacStats;

/// A convolution layer lowered to integer arithmetic.
///
/// # Example
///
/// ```
/// use adq_pim::QuantizedConv2d;
/// use adq_quant::{BitWidth, Quantizer};
/// use adq_tensor::{Conv2dGeom, Tensor};
///
/// # fn main() -> Result<(), adq_quant::QuantError> {
/// let geom = Conv2dGeom::new(1, 1, 1, 1, 0);
/// let weight = Tensor::from_slice(&[0.5]).reshaped(&[1, 1]).expect("shape");
/// let conv = QuantizedConv2d::from_float(geom, &weight, &[0.0], BitWidth::new(8)?)?;
/// let input = Tensor::ones(&[1, 1, 2, 2]);
/// let act_q = Quantizer::fit(BitWidth::new(8)?, input.data())?;
/// let (output, _) = conv.run(&input, &act_q);
/// assert_eq!(output.dims(), &[1, 1, 2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedConv2d {
    geom: Conv2dGeom,
    /// Weight codes, row-major `[O, I·p·p]`.
    weight_codes: Vec<u64>,
    /// Per-filter code sums (Σ c_w), precomputed.
    weight_code_sums: Vec<u64>,
    weight_q: Quantizer,
    bias: Vec<f32>,
    precision: HwPrecision,
}

impl QuantizedConv2d {
    /// Quantizes a float weight matrix `[O, I·p·p]` into an integer layer.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if the weights are empty or non-finite.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not `[O, I·p·p]` for `geom` or `bias` is not
    /// length `O`.
    // indexed loop: `oi`/`o` address weight rows and bias together
    #[allow(clippy::needless_range_loop)]
    pub fn from_float(
        geom: Conv2dGeom,
        weight: &Tensor,
        bias: &[f32],
        bits: adq_quant::BitWidth,
    ) -> Result<Self, QuantError> {
        let fan_in = geom.in_channels * geom.kernel * geom.kernel;
        assert_eq!(
            weight.dims(),
            &[geom.out_channels, fan_in],
            "weight must be [O, I*p*p]"
        );
        assert_eq!(bias.len(), geom.out_channels, "one bias per filter");
        let weight_q = Quantizer::fit(bits, weight.data())?;
        let weight_codes = weight_q.quantize_tensor(weight);
        let weight_code_sums = weight_codes
            .chunks(fan_in)
            .map(|row| row.iter().sum())
            .collect();
        Ok(Self {
            geom,
            weight_codes,
            weight_code_sums,
            weight_q,
            bias: bias.to_vec(),
            precision: HwPrecision::legalize(bits),
        })
    }

    /// The convolution geometry.
    pub fn geom(&self) -> Conv2dGeom {
        self.geom
    }

    /// The hardware precision the layer executes at.
    pub fn precision(&self) -> HwPrecision {
        self.precision
    }

    /// The weight quantizer (range/step actually deployed).
    pub fn weight_quantizer(&self) -> Quantizer {
        self.weight_q
    }

    /// Runs the layer: quantizes `input` with `act_q`, convolves with
    /// integer arithmetic, and dequantizes into f32 output (bias added).
    ///
    /// Returns the output and the MAC-level activity of the computation
    /// (one `k²`-bit-op MAC per valid tap).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not `[N, I, H, W]`.
    pub fn run(&self, input: &Tensor, act_q: &Quantizer) -> (Tensor, MacStats) {
        assert_eq!(input.rank(), 4, "input must be NCHW");
        assert_eq!(input.dims()[1], self.geom.in_channels, "channel mismatch");
        let (n, h, w) = (input.dims()[0], input.dims()[2], input.dims()[3]);
        let (oh, ow) = (self.geom.output_size(h), self.geom.output_size(w));
        let p = self.geom.kernel;
        let (ic, oc) = (self.geom.in_channels, self.geom.out_channels);

        // quantize activations once
        let act_codes = act_q.quantize_tensor(input);

        let s_w = f64::from(self.weight_q.step());
        let s_a = f64::from(act_q.step());
        let w_min = f64::from(self.weight_q.range().min());
        let a_min = f64::from(act_q.range().min());

        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        let mut stats = MacStats::default();
        let k = u64::from(self.precision.bits());
        let fan_in = ic * p * p;
        for ni in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    // gather the valid-tap activation window once per pixel
                    let mut taps: Vec<(usize, u64)> = Vec::with_capacity(fan_in);
                    let mut sum_ca: u64 = 0;
                    for ci in 0..ic {
                        for ky in 0..p {
                            let iy =
                                (oy * self.geom.stride + ky) as isize - self.geom.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..p {
                                let ix = (ox * self.geom.stride + kx) as isize
                                    - self.geom.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let a_idx = ((ni * ic + ci) * h + iy as usize) * w + ix as usize;
                                let w_idx = (ci * p + ky) * p + kx;
                                let code = act_codes[a_idx];
                                taps.push((w_idx, code));
                                sum_ca += code;
                            }
                        }
                    }
                    let valid = taps.len() as f64;
                    for oi in 0..oc {
                        let w_row = &self.weight_codes[oi * fan_in..(oi + 1) * fan_in];
                        let mut acc: u128 = 0;
                        let mut sum_cw: u64 = 0;
                        for &(w_idx, code) in &taps {
                            let cw = w_row[w_idx];
                            acc += u128::from(cw) * u128::from(code);
                            sum_cw += cw;
                        }
                        let value = s_w * s_a * acc as f64
                            + w_min * s_a * sum_ca as f64
                            + a_min * s_w * sum_cw as f64
                            + valid * w_min * a_min
                            + f64::from(self.bias[oi]);
                        *out.at4_mut(ni, oi, oy, ox) = value as f32;
                        stats.cell_ops += taps.len() as u64 * k * k;
                        stats.shift_adds += taps.len() as u64 * (k * k - 1);
                    }
                    stats.cycles += k;
                }
            }
        }
        // the weight-code-sum precompute is exposed for peripherals; use it
        // in debug builds to cross-check the full-window case
        debug_assert!(!self.weight_code_sums.is_empty());
        (out, stats)
    }
}

/// A fully connected layer lowered to integer arithmetic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedLinear {
    in_features: usize,
    out_features: usize,
    weight_codes: Vec<u64>,
    weight_q: Quantizer,
    bias: Vec<f32>,
    precision: HwPrecision,
}

impl QuantizedLinear {
    /// Quantizes a float weight matrix `[out, in]`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if the weights are empty or non-finite.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank-2 or `bias` mismatches.
    pub fn from_float(
        weight: &Tensor,
        bias: &[f32],
        bits: adq_quant::BitWidth,
    ) -> Result<Self, QuantError> {
        assert_eq!(weight.rank(), 2, "weight must be [out, in]");
        let (out_features, in_features) = (weight.dims()[0], weight.dims()[1]);
        assert_eq!(bias.len(), out_features, "one bias per output");
        let weight_q = Quantizer::fit(bits, weight.data())?;
        Ok(Self {
            in_features,
            out_features,
            weight_codes: weight_q.quantize_tensor(weight),
            weight_q,
            bias: bias.to_vec(),
            precision: HwPrecision::legalize(bits),
        })
    }

    /// The hardware precision the layer executes at.
    pub fn precision(&self) -> HwPrecision {
        self.precision
    }

    /// Runs `y = fq(x)·fq(W)ᵀ + b` in integer arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not `[N, in]`.
    pub fn run(&self, input: &Tensor, act_q: &Quantizer) -> (Tensor, MacStats) {
        assert_eq!(input.rank(), 2, "input must be [N, in]");
        assert_eq!(input.dims()[1], self.in_features, "feature mismatch");
        let n = input.dims()[0];
        let act_codes = act_q.quantize_tensor(input);
        let s_w = f64::from(self.weight_q.step());
        let s_a = f64::from(act_q.step());
        let w_min = f64::from(self.weight_q.range().min());
        let a_min = f64::from(act_q.range().min());
        let mut out = Tensor::zeros(&[n, self.out_features]);
        let mut stats = MacStats::default();
        let k = u64::from(self.precision.bits());
        for ni in 0..n {
            let a_row = &act_codes[ni * self.in_features..(ni + 1) * self.in_features];
            let sum_ca: u64 = a_row.iter().sum();
            for oi in 0..self.out_features {
                let w_row = &self.weight_codes[oi * self.in_features..(oi + 1) * self.in_features];
                let mut acc: u128 = 0;
                let mut sum_cw: u64 = 0;
                for (&cw, &ca) in w_row.iter().zip(a_row) {
                    acc += u128::from(cw) * u128::from(ca);
                    sum_cw += cw;
                }
                let value = s_w * s_a * acc as f64
                    + w_min * s_a * sum_ca as f64
                    + a_min * s_w * sum_cw as f64
                    + self.in_features as f64 * w_min * a_min
                    + f64::from(self.bias[oi]);
                *out.at2_mut(ni, oi) = value as f32;
                stats.cell_ops += self.in_features as u64 * k * k;
                stats.shift_adds += self.in_features as u64 * (k * k - 1);
            }
            stats.cycles += k;
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adq_quant::BitWidth;
    use adq_tensor::init;

    fn bw(bits: u32) -> BitWidth {
        BitWidth::new(bits).unwrap()
    }

    /// Float reference: convolve fake-quantized weights with fake-quantized
    /// activations (exact-zero padding), in f64.
    #[allow(clippy::needless_range_loop)]
    fn reference_conv(
        geom: &Conv2dGeom,
        weight: &Tensor,
        bias: &[f32],
        input: &Tensor,
        wq: &Quantizer,
        aq: &Quantizer,
    ) -> Tensor {
        let (n, h, w) = (input.dims()[0], input.dims()[2], input.dims()[3]);
        let (oh, ow) = (geom.output_size(h), geom.output_size(w));
        let p = geom.kernel;
        let mut out = Tensor::zeros(&[n, geom.out_channels, oh, ow]);
        for ni in 0..n {
            for oi in 0..geom.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = f64::from(bias[oi]);
                        for ci in 0..geom.in_channels {
                            for ky in 0..p {
                                for kx in 0..p {
                                    let iy =
                                        (oy * geom.stride + ky) as isize - geom.padding as isize;
                                    let ix =
                                        (ox * geom.stride + kx) as isize - geom.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    let a = aq.fake_quantize(input.at4(
                                        ni,
                                        ci,
                                        iy as usize,
                                        ix as usize,
                                    ));
                                    let wv =
                                        wq.fake_quantize(weight.at2(oi, (ci * p + ky) * p + kx));
                                    acc += f64::from(a) * f64::from(wv);
                                }
                            }
                        }
                        *out.at4_mut(ni, oi, oy, ox) = acc as f32;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn integer_conv_matches_float_reference() {
        let mut rng = init::rng(1);
        for bits in [2u32, 4, 8] {
            let geom = Conv2dGeom::new(2, 3, 3, 1, 1);
            let weight = init::normal(&[3, 18], 0.0, 0.5, &mut rng);
            let bias = [0.1f32, -0.2, 0.3];
            let input = init::normal(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
            let conv = QuantizedConv2d::from_float(geom, &weight, &bias, bw(bits)).unwrap();
            let aq = Quantizer::fit(bw(bits), input.data()).unwrap();
            let (fast, _) = conv.run(&input, &aq);
            let slow = reference_conv(&geom, &weight, &bias, &input, &conv.weight_quantizer(), &aq);
            for (a, b) in fast.data().iter().zip(slow.data()) {
                assert!((a - b).abs() < 1e-3, "bits={bits}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn integer_conv_strided_matches() {
        let mut rng = init::rng(2);
        let geom = Conv2dGeom::new(1, 2, 3, 2, 1);
        let weight = init::normal(&[2, 9], 0.0, 0.5, &mut rng);
        let bias = [0.0f32, 0.0];
        let input = init::normal(&[1, 1, 6, 6], 0.0, 1.0, &mut rng);
        let conv = QuantizedConv2d::from_float(geom, &weight, &bias, bw(4)).unwrap();
        let aq = Quantizer::fit(bw(4), input.data()).unwrap();
        let (fast, _) = conv.run(&input, &aq);
        let slow = reference_conv(&geom, &weight, &bias, &input, &conv.weight_quantizer(), &aq);
        for (a, b) in fast.data().iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn integer_linear_matches_float_reference() {
        let mut rng = init::rng(3);
        let weight = init::normal(&[3, 8], 0.0, 0.5, &mut rng);
        let bias = [0.5f32, -0.5, 0.0];
        let input = init::normal(&[4, 8], 0.0, 1.0, &mut rng);
        let layer = QuantizedLinear::from_float(&weight, &bias, bw(8)).unwrap();
        let aq = Quantizer::fit(bw(8), input.data()).unwrap();
        let (fast, _) = layer.run(&input, &aq);
        let wq = Quantizer::fit(bw(8), weight.data()).unwrap();
        for ni in 0..4 {
            for oi in 0..3 {
                let mut acc = f64::from(bias[oi]);
                for i in 0..8 {
                    acc += f64::from(aq.fake_quantize(input.at2(ni, i)))
                        * f64::from(wq.fake_quantize(weight.at2(oi, i)));
                }
                assert!((fast.at2(ni, oi) - acc as f32).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn stats_count_per_valid_tap() {
        let geom = Conv2dGeom::new(1, 1, 1, 1, 0);
        let weight = Tensor::ones(&[1, 1]);
        let conv = QuantizedConv2d::from_float(geom, &weight, &[0.0], bw(2)).unwrap();
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let aq = Quantizer::fit(bw(2), &[0.0, 1.0]).unwrap();
        let (_, stats) = conv.run(&input, &aq);
        // 4 output pixels * 1 tap * k² = 4 * 4
        assert_eq!(stats.cell_ops, 16);
    }

    #[test]
    fn precision_is_legalized() {
        let weight = Tensor::ones(&[1, 1]);
        let conv =
            QuantizedConv2d::from_float(Conv2dGeom::new(1, 1, 1, 1, 0), &weight, &[0.0], bw(3))
                .unwrap();
        assert_eq!(conv.precision(), HwPrecision::B4);
    }

    #[test]
    #[should_panic]
    fn wrong_weight_shape_panics() {
        let weight = Tensor::ones(&[2, 5]);
        let _ = QuantizedConv2d::from_float(
            Conv2dGeom::new(1, 2, 2, 1, 0),
            &weight,
            &[0.0, 0.0],
            bw(4),
        );
    }
}
