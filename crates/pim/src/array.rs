use adq_quant::{BitWidth, HwPrecision};
use serde::{Deserialize, Serialize};

use crate::energy::PimEnergyModel;
use crate::mac::MacStats;

/// Physical configuration of the PIM block: a 2-D array of 1-bit
/// memory-and-multiply cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimArray {
    /// Word-lines (activation broadcast rows).
    pub rows: usize,
    /// Bit-lines (weight-bit columns).
    pub cols: usize,
}

impl PimArray {
    /// A 128×128 array — a typical SRAM-PIM macro size.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        Self { rows, cols }
    }

    /// Weights that fit per row-tile at a precision: a `k`-bit weight
    /// occupies `k` adjacent columns (bit-sliced storage).
    pub fn weights_per_tile(&self, precision: HwPrecision) -> usize {
        self.cols / precision.bits() as usize
    }

    /// Number of (row, column) tiles needed for a layer whose dot products
    /// have `fan_in` terms and which has `out_count` independent outputs.
    pub fn tiles_for_layer(&self, fan_in: usize, out_count: usize, precision: HwPrecision) -> u64 {
        let row_tiles = fan_in.div_ceil(self.rows) as u64;
        let per_tile = self.weights_per_tile(precision).max(1);
        let col_tiles = out_count.div_ceil(per_tile) as u64;
        row_tiles * col_tiles
    }

    /// Bit-serial cycles to evaluate a layer: each tile streams the
    /// activation bits once.
    pub fn cycles_for_layer(&self, fan_in: usize, out_count: usize, precision: HwPrecision) -> u64 {
        self.tiles_for_layer(fan_in, out_count, precision) * u64::from(precision.bits())
    }
}

impl Default for PimArray {
    /// 128×128 cells.
    fn default() -> Self {
        Self::new(128, 128)
    }
}

/// One network layer mapped onto the accelerator: its MAC count and the
/// legalised precision it runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerMapping {
    /// Layer name index (position in the network).
    pub index: usize,
    /// Multiply-accumulate operations in the layer.
    pub macs: u64,
    /// Hardware precision after legalisation ({2, 4, 8, 16}-bit).
    pub precision: HwPrecision,
}

impl LayerMapping {
    /// Maps a layer, legalising an arbitrary trained bit-width onto the
    /// supported set (3-bit → 4-bit, 5-bit → 8-bit, …).
    pub fn new(index: usize, macs: u64, bits: BitWidth) -> Self {
        Self {
            index,
            macs,
            precision: HwPrecision::legalize(bits),
        }
    }

    /// MAC energy of this layer in microjoules.
    pub fn energy_uj(&self, model: &PimEnergyModel) -> f64 {
        model.macs_uj(self.macs, self.precision)
    }
}

/// Network-level PIM energy accounting (the quantity compared in
/// Tables V and VI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkEnergyReport {
    name: String,
    layers: Vec<LayerMapping>,
    per_layer_uj: Vec<f64>,
    total_uj: f64,
}

impl NetworkEnergyReport {
    /// Computes the report for a mapped network.
    pub fn new(name: impl Into<String>, layers: Vec<LayerMapping>, model: &PimEnergyModel) -> Self {
        let per_layer_uj: Vec<f64> = layers.iter().map(|l| l.energy_uj(model)).collect();
        let total_uj = per_layer_uj.iter().sum();
        Self {
            name: name.into(),
            layers,
            per_layer_uj,
            total_uj,
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer mappings.
    pub fn layers(&self) -> &[LayerMapping] {
        &self.layers
    }

    /// Per-layer energies in microjoules, same order as `layers`.
    pub fn per_layer_uj(&self) -> &[f64] {
        &self.per_layer_uj
    }

    /// Total MAC energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_uj
    }

    /// Energy reduction of `self` relative to `baseline`
    /// (`E_baseline / E_self`, the paper's "Energy reduction" column).
    ///
    /// # Panics
    ///
    /// Panics if this network's energy is zero.
    pub fn reduction_vs(&self, baseline: &NetworkEnergyReport) -> f64 {
        assert!(self.total_uj > 0.0, "network has zero energy");
        baseline.total_uj / self.total_uj
    }

    /// Aggregate datapath activity for the whole network on a given array
    /// (cycles and cell/shift-add operation counts).
    pub fn activity(&self, array: &PimArray, fan_in_per_layer: &[usize]) -> MacStats {
        let mut stats = MacStats::default();
        for (layer, &fan_in) in self.layers.iter().zip(fan_in_per_layer) {
            let k = u64::from(layer.precision.bits());
            let outs = if fan_in == 0 {
                0
            } else {
                (layer.macs / fan_in as u64) as usize
            };
            stats.cycles += array.cycles_for_layer(fan_in, outs, layer.precision);
            stats.cell_ops += layer.macs * k * k;
            stats.shift_adds += layer.macs * (k * k - 1);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(bits: u32) -> BitWidth {
        BitWidth::new(bits).unwrap()
    }

    #[test]
    fn weights_per_tile_depends_on_precision() {
        let a = PimArray::new(128, 128);
        assert_eq!(a.weights_per_tile(HwPrecision::B2), 64);
        assert_eq!(a.weights_per_tile(HwPrecision::B16), 8);
    }

    #[test]
    fn tiles_round_up() {
        let a = PimArray::new(128, 128);
        // fan_in 130 needs 2 row tiles; 9 outputs at 16-bit (8/tile) need 2
        assert_eq!(a.tiles_for_layer(130, 9, HwPrecision::B16), 4);
    }

    #[test]
    fn cycles_scale_with_precision() {
        let a = PimArray::default();
        let lo = a.cycles_for_layer(64, 8, HwPrecision::B2);
        let hi = a.cycles_for_layer(64, 8, HwPrecision::B16);
        assert!(hi > lo);
    }

    #[test]
    fn mapping_legalizes_bits() {
        let m = LayerMapping::new(0, 1000, bw(3));
        assert_eq!(m.precision, HwPrecision::B4);
        let m = LayerMapping::new(0, 1000, bw(5));
        assert_eq!(m.precision, HwPrecision::B8);
    }

    #[test]
    fn report_totals_are_sums() {
        let model = PimEnergyModel::paper_table4();
        let layers = vec![
            LayerMapping::new(0, 1_000_000, bw(16)),
            LayerMapping::new(1, 2_000_000, bw(2)),
        ];
        let report = NetworkEnergyReport::new("n", layers, &model);
        let expected = 1e6 * 276.676 / 1e9 + 2e6 * 2.942 / 1e9;
        assert!((report.total_uj() - expected).abs() < 1e-9);
        assert_eq!(report.per_layer_uj().len(), 2);
    }

    #[test]
    fn reduction_vs_baseline() {
        let model = PimEnergyModel::paper_table4();
        let base = NetworkEnergyReport::new(
            "base",
            vec![LayerMapping::new(0, 1_000_000, bw(16))],
            &model,
        );
        let quant = NetworkEnergyReport::new(
            "quant",
            vec![LayerMapping::new(0, 1_000_000, bw(4))],
            &model,
        );
        let r = quant.reduction_vs(&base);
        // 276.676 / 16.968 ≈ 16.3
        assert!((16.0..17.0).contains(&r), "reduction {r}");
    }

    #[test]
    fn lower_precision_never_costs_more() {
        let model = PimEnergyModel::paper_table4();
        for w in HwPrecision::ALL.windows(2) {
            let lo = LayerMapping {
                index: 0,
                macs: 1000,
                precision: w[0],
            };
            let hi = LayerMapping {
                index: 0,
                macs: 1000,
                precision: w[1],
            };
            assert!(lo.energy_uj(&model) < hi.energy_uj(&model));
        }
    }

    #[test]
    fn activity_counts_bit_ops() {
        let model = PimEnergyModel::paper_table4();
        let report = NetworkEnergyReport::new("n", vec![LayerMapping::new(0, 100, bw(2))], &model);
        let stats = report.activity(&PimArray::default(), &[10]);
        assert_eq!(stats.cell_ops, 100 * 4);
        assert_eq!(stats.shift_adds, 100 * 3);
        assert!(stats.cycles > 0);
    }

    #[test]
    #[should_panic]
    fn zero_array_panics() {
        PimArray::new(0, 4);
    }
}
