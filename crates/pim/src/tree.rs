use adq_quant::HwPrecision;
use serde::{Deserialize, Serialize};

/// A level of the shift-accumulator hierarchy (Fig 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccLevel {
    /// The lowest, 4-bit accumulators (`ACC_4,i`): four PIM columns are read
    /// together into this level.
    Acc4,
    /// 8-bit accumulators (`ACC_8,i`), fed by pairs of 4-bit results.
    Acc8,
    /// 16-bit accumulators (`ACC_16,i`), the top of the hierarchy.
    Acc16,
}

impl AccLevel {
    /// All levels, lowest first.
    pub const ALL: [AccLevel; 3] = [Self::Acc4, Self::Acc8, Self::Acc16];

    /// Output width of this level in bits.
    pub fn width(self) -> u32 {
        match self {
            Self::Acc4 => 4,
            Self::Acc8 => 8,
            Self::Acc16 => 16,
        }
    }
}

/// Activity model of the shift-accumulator block for one layer precision.
///
/// §V-A: *"if the weight/activation bit-width of a given layer is 2-bits,
/// the corresponding MAC values are stored in the 4-bit accumulator and are
/// regarded as the final result and forwarded. […] if the precision is
/// 4-bits, the results from ACC_4 undergo shift-and-add to yield 8-bit
/// accumulated results in ACC_8 which are then forwarded."*
///
/// # Example
///
/// ```
/// use adq_pim::{AccLevel, ShiftAccumulatorTree};
/// use adq_quant::HwPrecision;
///
/// let tree = ShiftAccumulatorTree::for_precision(HwPrecision::B2);
/// assert_eq!(tree.forwarding_level(), AccLevel::Acc4);
/// assert_eq!(tree.active_levels(), &[AccLevel::Acc4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShiftAccumulatorTree {
    precision: HwPrecision,
    active: Vec<AccLevel>,
}

impl ShiftAccumulatorTree {
    /// Configures the tree for a layer precision.
    pub fn for_precision(precision: HwPrecision) -> Self {
        let active = match precision {
            HwPrecision::B2 => vec![AccLevel::Acc4],
            HwPrecision::B4 => vec![AccLevel::Acc4, AccLevel::Acc8],
            HwPrecision::B8 | HwPrecision::B16 => {
                vec![AccLevel::Acc4, AccLevel::Acc8, AccLevel::Acc16]
            }
        };
        Self { precision, active }
    }

    /// The layer precision this tree is configured for.
    pub fn precision(&self) -> HwPrecision {
        self.precision
    }

    /// Accumulator levels that toggle for this precision, lowest first.
    pub fn active_levels(&self) -> &[AccLevel] {
        &self.active
    }

    /// The level whose output is forwarded to the next layer.
    pub fn forwarding_level(&self) -> AccLevel {
        *self.active.last().expect("tree always has a level")
    }

    /// Number of shift-and-add operations needed to reduce one MAC's
    /// bit-plane partial sums through the active levels.
    ///
    /// A `k`-bit MAC produces `k²` single-bit partial products; reducing
    /// them costs `k² − 1` adds arranged across the hierarchy. This is the
    /// quantity the energy model's shift-add term scales with.
    pub fn shift_adds_per_mac(&self) -> u64 {
        let k = u64::from(self.precision.bits());
        k * k - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_stops_at_acc4() {
        let t = ShiftAccumulatorTree::for_precision(HwPrecision::B2);
        assert_eq!(t.forwarding_level(), AccLevel::Acc4);
        assert_eq!(t.active_levels().len(), 1);
    }

    #[test]
    fn four_bit_forwards_from_acc8() {
        let t = ShiftAccumulatorTree::for_precision(HwPrecision::B4);
        assert_eq!(t.forwarding_level(), AccLevel::Acc8);
        assert_eq!(t.active_levels(), &[AccLevel::Acc4, AccLevel::Acc8]);
    }

    #[test]
    fn wide_precisions_use_whole_tree() {
        for p in [HwPrecision::B8, HwPrecision::B16] {
            let t = ShiftAccumulatorTree::for_precision(p);
            assert_eq!(t.forwarding_level(), AccLevel::Acc16);
            assert_eq!(t.active_levels().len(), 3);
        }
    }

    #[test]
    fn deeper_trees_cost_more_shift_adds() {
        let costs: Vec<u64> = HwPrecision::ALL
            .iter()
            .map(|&p| ShiftAccumulatorTree::for_precision(p).shift_adds_per_mac())
            .collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]), "{costs:?}");
    }

    #[test]
    fn level_widths_ascend() {
        let widths: Vec<u32> = AccLevel::ALL.iter().map(|l| l.width()).collect();
        assert_eq!(widths, vec![4, 8, 16]);
    }
}
