use adq_quant::HwPrecision;
use serde::{Deserialize, Serialize};

/// Per-MAC energy of the PIM accelerator at each supported precision,
/// in femtojoules.
///
/// Defaults are Table IV of the paper (45 nm CMOS evaluation):
///
/// | precision | energy (fJ) |
/// |---|---|
/// | 2-bit | 2.942 |
/// | 4-bit | 16.968 |
/// | 8-bit | 66.714 |
/// | 16-bit | 276.676 |
///
/// The roughly 4× step per precision doubling reflects the `k²` bit-products
/// a `k×k`-bit bit-serial MAC performs; [`PimEnergyModel::quadratic`] builds
/// a model from that first-principles shape for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PimEnergyModel {
    mac_fj: [f64; 4],
}

impl PimEnergyModel {
    /// The exact Table IV values.
    pub fn paper_table4() -> Self {
        Self {
            mac_fj: [2.942, 16.968, 66.714, 276.676],
        }
    }

    /// A first-principles quadratic model: a `k`-bit MAC performs `k²`
    /// 1-bit cell operations plus shift-add overhead proportional to `k`.
    ///
    /// `cell_fj` is the energy of one 1-bit multiply-and-read;
    /// `shift_add_fj` the per-bit shift-accumulate cost.
    ///
    /// # Panics
    ///
    /// Panics if either constant is negative.
    pub fn quadratic(cell_fj: f64, shift_add_fj: f64) -> Self {
        assert!(
            cell_fj >= 0.0 && shift_add_fj >= 0.0,
            "energies must be non-negative"
        );
        let mut mac_fj = [0.0; 4];
        for (slot, p) in HwPrecision::ALL.iter().enumerate() {
            let k = f64::from(p.bits());
            mac_fj[slot] = cell_fj * k * k + shift_add_fj * k;
        }
        Self { mac_fj }
    }

    /// Energy of one MAC at the given precision, in femtojoules.
    pub fn mac_fj(&self, precision: HwPrecision) -> f64 {
        self.mac_fj[Self::slot(precision)]
    }

    /// Energy of `count` MACs at the given precision, in microjoules.
    pub fn macs_uj(&self, count: u64, precision: HwPrecision) -> f64 {
        count as f64 * self.mac_fj(precision) / 1e9
    }

    fn slot(precision: HwPrecision) -> usize {
        match precision {
            HwPrecision::B2 => 0,
            HwPrecision::B4 => 1,
            HwPrecision::B8 => 2,
            HwPrecision::B16 => 3,
        }
    }
}

impl Default for PimEnergyModel {
    /// Table IV values.
    fn default() -> Self {
        Self::paper_table4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values_exact() {
        let m = PimEnergyModel::paper_table4();
        assert_eq!(m.mac_fj(HwPrecision::B2), 2.942);
        assert_eq!(m.mac_fj(HwPrecision::B4), 16.968);
        assert_eq!(m.mac_fj(HwPrecision::B8), 66.714);
        assert_eq!(m.mac_fj(HwPrecision::B16), 276.676);
    }

    #[test]
    fn energy_monotone_in_precision() {
        let m = PimEnergyModel::paper_table4();
        let values: Vec<f64> = HwPrecision::ALL.iter().map(|&p| m.mac_fj(p)).collect();
        assert!(values.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn macs_uj_scales_linearly() {
        let m = PimEnergyModel::paper_table4();
        let one = m.macs_uj(1_000_000, HwPrecision::B16);
        let two = m.macs_uj(2_000_000, HwPrecision::B16);
        assert!((two - 2.0 * one).abs() < 1e-12);
        // 1e6 MACs * 276.676 fJ = 0.276676 uJ
        assert!((one - 0.276676).abs() < 1e-9);
    }

    #[test]
    fn quadratic_model_tracks_table4_shape() {
        // fit cell energy on the 16-bit point: 276.676 ≈ c*256 + s*16
        let m = PimEnergyModel::quadratic(1.0, 1.3);
        let ratio_8_to_16 = m.mac_fj(HwPrecision::B16) / m.mac_fj(HwPrecision::B8);
        let paper = PimEnergyModel::paper_table4();
        let paper_ratio = paper.mac_fj(HwPrecision::B16) / paper.mac_fj(HwPrecision::B8);
        // both near 4x
        assert!((ratio_8_to_16 - paper_ratio).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_cell_energy_panics() {
        PimEnergyModel::quadratic(-1.0, 0.0);
    }
}
