use serde::{Deserialize, Serialize};

use crate::mac::MacStats;

/// Binary (±1) dot products via XNOR + popcount — the degenerate 1-bit case
/// the paper's §II-A notes: *"in the cases of extreme quantization where
/// there is 1-bit representation, the integer arithmetic can be further
/// reduced to bit-wise XNOR operations"*.
///
/// Values are encoded as bits (`1 ↦ +1`, `0 ↦ −1`); the dot product of two
/// ±1 vectors of length `n` is `2·popcount(XNOR(w, a)) − n`.
///
/// # Example
///
/// ```
/// use adq_pim::XnorMac;
///
/// // w = [+1, -1, +1], a = [+1, +1, -1] -> dot = 1 - 1 - 1 = -1
/// let (dot, _) = XnorMac::dot_bits(&[true, false, true], &[true, true, false]);
/// assert_eq!(dot, -1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct XnorMac;

impl XnorMac {
    /// Dot product of two ±1 vectors given as sign bits.
    ///
    /// Returns the integer dot product and the datapath activity: one
    /// XNOR (counted as a 1-bit cell op) per element plus a popcount
    /// reduction (`n − 1` adds).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_bits(weights: &[bool], activations: &[bool]) -> (i64, MacStats) {
        assert_eq!(
            weights.len(),
            activations.len(),
            "weight/activation length mismatch"
        );
        let n = weights.len() as i64;
        let matches = weights
            .iter()
            .zip(activations)
            .filter(|(w, a)| w == a)
            .count() as i64;
        let stats = MacStats {
            cell_ops: weights.len() as u64,
            shift_adds: (weights.len() as u64).saturating_sub(1),
            cycles: 1,
        };
        (2 * matches - n, stats)
    }

    /// Dot product of packed sign-bit words (64 lanes per word); `len` is
    /// the number of valid trailing... leading lanes in the final word.
    ///
    /// This is the form a real binary engine uses: one XNOR and one
    /// popcount per 64 lanes.
    ///
    /// # Panics
    ///
    /// Panics if the word counts differ or `len` exceeds the capacity.
    pub fn dot_packed(weights: &[u64], activations: &[u64], len: usize) -> (i64, MacStats) {
        assert_eq!(weights.len(), activations.len(), "word count mismatch");
        assert!(len <= weights.len() * 64, "len exceeds packed capacity");
        let mut matches: i64 = 0;
        let mut remaining = len;
        for (&w, &a) in weights.iter().zip(activations) {
            let lanes = remaining.min(64);
            if lanes == 0 {
                break;
            }
            let mask = if lanes == 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            };
            matches += ((!(w ^ a)) & mask).count_ones() as i64;
            remaining -= lanes;
        }
        let stats = MacStats {
            cell_ops: len as u64,
            shift_adds: weights.len() as u64,
            cycles: 1,
        };
        (2 * matches - len as i64, stats)
    }

    /// Reference ±1 dot product from sign bits.
    pub fn dot_reference(weights: &[bool], activations: &[bool]) -> i64 {
        weights
            .iter()
            .zip(activations)
            .map(|(&w, &a)| {
                let wv = if w { 1i64 } else { -1 };
                let av = if a { 1i64 } else { -1 };
                wv * av
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_matching_gives_n() {
        let bits = vec![true, false, true, false];
        let (dot, _) = XnorMac::dot_bits(&bits, &bits);
        assert_eq!(dot, 4);
    }

    #[test]
    fn all_opposite_gives_minus_n() {
        let w = vec![true, true];
        let a = vec![false, false];
        let (dot, _) = XnorMac::dot_bits(&w, &a);
        assert_eq!(dot, -2);
    }

    #[test]
    fn matches_reference_exhaustively_for_small_n() {
        for pattern in 0u32..256 {
            let w: Vec<bool> = (0..4).map(|i| pattern >> i & 1 == 1).collect();
            let a: Vec<bool> = (0..4).map(|i| pattern >> (i + 4) & 1 == 1).collect();
            let (dot, _) = XnorMac::dot_bits(&w, &a);
            assert_eq!(dot, XnorMac::dot_reference(&w, &a));
        }
    }

    #[test]
    fn packed_matches_unpacked() {
        // 100 lanes spanning two words
        let w_bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let a_bits: Vec<bool> = (0..100).map(|i| i % 7 != 0).collect();
        let pack = |bits: &[bool]| -> Vec<u64> {
            let mut words = vec![0u64; bits.len().div_ceil(64)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    words[i / 64] |= 1 << (i % 64);
                }
            }
            words
        };
        let (packed, _) = XnorMac::dot_packed(&pack(&w_bits), &pack(&a_bits), 100);
        let (unpacked, _) = XnorMac::dot_bits(&w_bits, &a_bits);
        assert_eq!(packed, unpacked);
    }

    #[test]
    fn packed_ignores_slack_lanes() {
        // garbage beyond `len` must not affect the result
        let w = vec![u64::MAX];
        let a = vec![0b101u64 | (u64::MAX << 10)];
        let (dot, _) = XnorMac::dot_packed(&w, &a, 3);
        // lanes: w=[1,1,1], a=[1,0,1] -> matches 2 -> 2*2-3 = 1
        assert_eq!(dot, 1);
    }

    #[test]
    fn stats_count_lanes() {
        let (_, stats) = XnorMac::dot_bits(&[true; 10], &[false; 10]);
        assert_eq!(stats.cell_ops, 10);
        assert_eq!(stats.shift_adds, 9);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        XnorMac::dot_bits(&[true], &[true, false]);
    }

    #[test]
    fn empty_dot_is_zero() {
        let (dot, _) = XnorMac::dot_bits(&[], &[]);
        assert_eq!(dot, 0);
    }
}
