//! Property-based tests: the PIM datapath must be bit-exact against
//! integer reference arithmetic for every precision and input (DESIGN.md §7).

use adq_pim::{BitSerialMac, XnorMac};
use adq_quant::HwPrecision;
use proptest::prelude::*;

fn precision_strategy() -> impl Strategy<Value = HwPrecision> {
    prop_oneof![
        Just(HwPrecision::B2),
        Just(HwPrecision::B4),
        Just(HwPrecision::B8),
        Just(HwPrecision::B16),
    ]
}

proptest! {
    #[test]
    fn bit_serial_mac_is_exact(
        precision in precision_strategy(),
        seed in 0u64..10_000,
        len in 0usize..32,
    ) {
        let limit = (1u64 << precision.bits()) - 1;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % (limit + 1)
        };
        let weights: Vec<u64> = (0..len).map(|_| next()).collect();
        let acts: Vec<u64> = (0..len).map(|_| next()).collect();
        let mac = BitSerialMac::new(precision);
        let (value, stats) = mac.dot(&weights, &acts);
        prop_assert_eq!(value, BitSerialMac::dot_reference(&weights, &acts));
        // activity invariants
        let k = u64::from(precision.bits());
        prop_assert_eq!(stats.cycles, k);
        prop_assert_eq!(stats.cell_ops, len as u64 * k * k);
    }

    #[test]
    fn xnor_dot_is_exact(bits in proptest::collection::vec(any::<(bool, bool)>(), 0..64)) {
        let w: Vec<bool> = bits.iter().map(|&(a, _)| a).collect();
        let a: Vec<bool> = bits.iter().map(|&(_, b)| b).collect();
        let (dot, _) = XnorMac::dot_bits(&w, &a);
        prop_assert_eq!(dot, XnorMac::dot_reference(&w, &a));
        // |dot| <= n and dot ≡ n (mod 2)
        let n = w.len() as i64;
        prop_assert!(dot.abs() <= n);
        prop_assert_eq!((dot - n).rem_euclid(2), 0);
    }

    #[test]
    fn xnor_packed_matches_unpacked(bits in proptest::collection::vec(any::<(bool, bool)>(), 0..200)) {
        let w: Vec<bool> = bits.iter().map(|&(a, _)| a).collect();
        let a: Vec<bool> = bits.iter().map(|&(_, b)| b).collect();
        let pack = |bits: &[bool]| -> Vec<u64> {
            let mut words = vec![0u64; bits.len().div_ceil(64).max(1)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    words[i / 64] |= 1 << (i % 64);
                }
            }
            words
        };
        let (packed, _) = XnorMac::dot_packed(&pack(&w), &pack(&a), w.len());
        let (unpacked, _) = XnorMac::dot_bits(&w, &a);
        prop_assert_eq!(packed, unpacked);
    }

    #[test]
    fn mac_energy_monotone_in_macs(macs_a in 0u64..1_000_000, macs_b in 0u64..1_000_000) {
        use adq_pim::PimEnergyModel;
        let model = PimEnergyModel::paper_table4();
        let (lo, hi) = if macs_a <= macs_b { (macs_a, macs_b) } else { (macs_b, macs_a) };
        prop_assert!(model.macs_uj(lo, HwPrecision::B8) <= model.macs_uj(hi, HwPrecision::B8));
    }
}
