//! Activation-Density based mixed-precision quantization — the primary
//! contribution of *"Activation Density based Mixed-Precision Quantization
//! for Energy Efficient Neural Networks"* (DATE 2021).
//!
//! The method (the paper's Algorithm 1):
//!
//! 1. train the network at an initial precision (16-bit) while monitoring
//!    each layer's Activation Density `AD_l` (eqn 2);
//! 2. once `AD_l` has saturated for every layer, re-quantize each layer to
//!    `k_l = round(k_l · AD_l)` (eqn 3) — both weights and activations;
//! 3. keep training the new mixed-precision network and repeat until AD no
//!    longer changes (in practice it climbs to ≈ 1 within 3–4 iterations);
//! 4. optionally prune channels simultaneously with
//!    `C_l = round(C_l · AD_l)` (eqn 5);
//! 5. the first conv layer and the final classifier are never quantized.
//!
//! Because progressively lower-precision models are trained, the overall
//! *training complexity* (eqn 4) drops ~50 % relative to training the
//! full-precision baseline for the whole schedule.
//!
//! Crate layout:
//!
//! * [`AdQuantizer`] / [`AdqConfig`] / [`AdqOutcome`] — the in-training
//!   controller, generic over any [`adq_nn::QuantModel`];
//! * [`checkpoint`] — durable checkpoint/resume for long Algorithm-1 runs
//!   ([`CheckpointManager`], [`RunCheckpoint`]), driven by
//!   [`AdQuantizer::run_checkpointed`] / [`AdQuantizer::resume_from`];
//! * [`training_complexity`] — eqn 4;
//! * [`builders`] — glue from live models to the analytical
//!   ([`adq_energy`]) and PIM ([`adq_pim`]) energy models;
//! * [`paper`] — the exact architectures and published per-layer operating
//!   points of Tables II and III, used to regenerate the paper's energy
//!   numbers without retraining.
//!
//! # Example
//!
//! ```no_run
//! use adq_core::{AdqConfig, AdQuantizer};
//! use adq_datasets::SyntheticSpec;
//! use adq_nn::Vgg;
//!
//! let (train, test) = SyntheticSpec::cifar10_like().generate();
//! let mut model = Vgg::small(3, 16, 10, 7);
//! let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
//! println!("final bits: {:?}", outcome.final_bits());
//! ```

mod complexity;
mod controller;

pub mod baselines;
pub mod builders;
pub mod checkpoint;
pub mod deploy;
pub mod paper;

pub use checkpoint::{
    restore_model, CheckpointError, CheckpointManager, RunCheckpoint, StructuralOp,
};
pub use complexity::{training_complexity, IterationCost};
pub use controller::{
    AdQuantizer, AdqConfig, AdqOutcome, DeadLayerPolicy, InstrumentedAdQuantizer, IterationRecord,
    PruneConfig,
};
