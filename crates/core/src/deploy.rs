//! Deployment: lowering a trained mixed-precision VGG onto the integer
//! datapath of the PIM accelerator.
//!
//! Training simulates quantization in floating point (fake quantization);
//! the accelerator executes integer code arithmetic. This module performs
//! the standard lowering steps —
//!
//! 1. **BN folding**: batch-norm running statistics are folded into the
//!    preceding convolution's weights and bias,
//! 2. **weight quantization** at each layer's trained bit-width,
//! 3. **activation re-quantization** between layers at the *producing*
//!    layer's bit-width (mirroring the training-time convention),
//!
//! — and runs inference entirely through [`adq_pim::QuantizedConv2d`] /
//! [`adq_pim::QuantizedLinear`], returning logits plus the accelerator
//! activity and energy of the run.

use adq_nn::{ConvBlock, GlobalAvgPool, LinearHead, MaxPool2d, ResNet, Vgg};
use adq_pim::{MacStats, PimEnergyModel, QuantizedConv2d, QuantizedLinear};
use adq_quant::{BitWidth, HwPrecision, QuantError, Quantizer};
use adq_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Why a strict lowering refused a model.
///
/// The lenient [`DeployedVgg::from_trained`] path never produces
/// [`DeployError::Unquantized`]: it falls back to 16-bit and bumps the
/// `deploy.unquantized_fallback` telemetry counter instead, so a
/// half-trained checkpoint is at least *visible* when it masquerades as a
/// 16-bit deployment. Use the `_strict` constructors to make it an error.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// A layer has no trained bit-width.
    Unquantized {
        /// Name of the offending layer.
        layer: String,
    },
    /// Weight quantization failed (empty or non-finite weights).
    Quant(QuantError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Unquantized { layer } => {
                write!(f, "layer '{layer}' has no trained bit-width")
            }
            DeployError::Quant(e) => write!(f, "quantization failed: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<QuantError> for DeployError {
    fn from(e: QuantError) -> Self {
        DeployError::Quant(e)
    }
}

/// Resolves a layer's deployment bit-width. Missing widths are a typed
/// error in strict mode; otherwise they fall back to the accelerator's
/// widest mode and are counted on `deploy.unquantized_fallback`.
fn deploy_bits(name: &str, bits: Option<BitWidth>, strict: bool) -> Result<BitWidth, DeployError> {
    match bits {
        Some(bits) => Ok(bits),
        None if !strict => {
            adq_telemetry::metrics::global()
                .counter("deploy.unquantized_fallback")
                .inc();
            Ok(BitWidth::SIXTEEN)
        }
        None => Err(DeployError::Unquantized {
            layer: name.to_string(),
        }),
    }
}

/// Unwraps the lenient path's error: with `strict = false`, only
/// quantization failures remain possible.
fn expect_quant(err: DeployError) -> QuantError {
    match err {
        DeployError::Quant(e) => e,
        DeployError::Unquantized { layer } => {
            unreachable!("lenient lowering cannot reject unquantized layer '{layer}'")
        }
    }
}

/// Accelerator-side cost of one deployed inference pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DeployStats {
    /// Aggregate datapath activity.
    pub mac_stats: MacStats,
    /// Total MAC count executed.
    pub macs: u64,
    /// MAC energy in microjoules (Table IV model).
    pub energy_uj: f64,
}

struct DeployedBlock {
    conv: QuantizedConv2d,
    pool: bool,
    /// Precision this block's *output* is carried at into the next layer.
    out_bits: BitWidth,
}

/// Folds a [`ConvBlock`]'s batch-norm into its convolution and quantizes
/// the result at the block's bit-width.
fn lower_conv_block(
    block: &ConvBlock,
    strict: bool,
) -> Result<(QuantizedConv2d, BitWidth), DeployError> {
    let bits = deploy_bits(block.name(), block.bits(), strict)?;
    let (weight, bias) = block.folded_weight_bias();
    Ok((
        QuantizedConv2d::from_float(block.geom(), &weight, &bias, bits)?,
        bits,
    ))
}

/// Quantizes a classifier head's weights at its bit-width.
fn lower_head(head: &LinearHead, strict: bool) -> Result<QuantizedLinear, DeployError> {
    let bits = deploy_bits(head.name(), head.bits(), strict)?;
    let linear = head.linear();
    Ok(QuantizedLinear::from_float(
        &linear.weight.value,
        linear.bias.value.data(),
        bits,
    )?)
}

/// Per-batch activation quantizer at a carried precision; a degenerate
/// all-equal tensor falls back to the point range.
fn act_quantizer(bits: BitWidth, data: &[f32]) -> Quantizer {
    Quantizer::fit(bits, data).unwrap_or_else(|_| Quantizer::new(bits, Default::default()))
}

/// A trained [`Vgg`] lowered to integer-only inference.
///
/// # Example
///
/// ```no_run
/// use adq_core::deploy::DeployedVgg;
/// use adq_datasets::SyntheticSpec;
/// use adq_nn::{QuantModel, Vgg};
///
/// # fn main() -> Result<(), adq_quant::QuantError> {
/// let (train, _) = SyntheticSpec::cifar10_like().generate();
/// let mut model = Vgg::small(3, 16, 10, 1);
/// // ... train / quantize the model ...
/// let deployed = DeployedVgg::from_trained(&model)?;
/// let (logits, stats) = deployed.run(&train.images);
/// println!("{} MACs, {:.4} uJ", stats.macs, stats.energy_uj);
/// # let _ = logits;
/// # Ok(())
/// # }
/// ```
pub struct DeployedVgg {
    blocks: Vec<DeployedBlock>,
    head: QuantizedLinear,
    energy_model: PimEnergyModel,
}

impl DeployedVgg {
    /// Lowers a trained model. Blocks without an assigned bit-width (full
    /// precision) are deployed at 16-bit, the accelerator's widest mode.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if any layer's weights are empty or
    /// non-finite.
    pub fn from_trained(model: &Vgg) -> Result<Self, QuantError> {
        Self::lower(model, false).map_err(expect_quant)
    }

    /// Like [`DeployedVgg::from_trained`], but a layer without a trained
    /// bit-width is a [`DeployError::Unquantized`] instead of a silent
    /// 16-bit fallback — a half-trained checkpoint cannot masquerade as a
    /// 16-bit deployment.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] on unquantized layers or non-finite
    /// weights.
    pub fn from_trained_strict(model: &Vgg) -> Result<Self, DeployError> {
        Self::lower(model, true)
    }

    fn lower(model: &Vgg, strict: bool) -> Result<Self, DeployError> {
        let mut blocks = Vec::new();
        for (index, block) in model.conv_blocks().iter().enumerate() {
            let (conv, out_bits) = lower_conv_block(block, strict)?;
            blocks.push(DeployedBlock {
                conv,
                pool: model.pool_after(index),
                out_bits,
            });
        }
        Ok(Self {
            blocks,
            head: lower_head(model.head(), strict)?,
            energy_model: PimEnergyModel::paper_table4(),
        })
    }

    /// Overrides the per-MAC energy model (defaults to Table IV).
    pub fn with_energy_model(mut self, energy_model: PimEnergyModel) -> Self {
        self.energy_model = energy_model;
        self
    }

    /// Number of deployed convolution layers.
    pub fn conv_layer_count(&self) -> usize {
        self.blocks.len()
    }

    /// Precisions the layers execute at, conv blocks then classifier.
    pub fn precisions(&self) -> Vec<HwPrecision> {
        let mut out: Vec<HwPrecision> = self.blocks.iter().map(|b| b.conv.precision()).collect();
        out.push(self.head.precision());
        out
    }

    /// Integer-only inference: returns logits `[N, classes]` and the
    /// accelerator cost of the pass.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not `[N, C, H, W]` matching the model.
    pub fn run(&self, images: &Tensor) -> (Tensor, DeployStats) {
        let mut stats = DeployStats::default();
        let mut x = images.clone();
        // network input is carried at the accelerator's full width
        let mut carry_bits = BitWidth::SIXTEEN;
        for block in &self.blocks {
            let act_q = act_quantizer(carry_bits, x.data());
            let (mut y, mac_stats) = block.conv.run(&x, &act_q);
            account(
                &self.energy_model,
                &mut stats,
                mac_stats,
                block.conv.precision(),
            );
            y.map_inplace(|v| v.max(0.0));
            if block.pool {
                let mut pool = MaxPool2d::new(2);
                y = pool.forward(&y);
            }
            carry_bits = block.out_bits;
            x = y;
        }
        let n = x.dims()[0];
        let features = x.len() / n.max(1);
        let flat = x.reshaped(&[n, features]).expect("flatten preserves count");
        let act_q = act_quantizer(carry_bits, flat.data());
        let (logits, mac_stats) = self.head.run(&flat, &act_q);
        account(
            &self.energy_model,
            &mut stats,
            mac_stats,
            self.head.precision(),
        );
        (logits, stats)
    }
}

fn account(
    energy_model: &PimEnergyModel,
    stats: &mut DeployStats,
    mac_stats: MacStats,
    precision: HwPrecision,
) {
    let k = u64::from(precision.bits());
    let macs = mac_stats.cell_ops / (k * k).max(1);
    stats.macs += macs;
    stats.energy_uj += energy_model.macs_uj(macs, precision);
    stats.mac_stats.merge(&mac_stats);
}

struct DeployedBasicBlock {
    conv1: QuantizedConv2d,
    conv1_bits: BitWidth,
    conv2: QuantizedConv2d,
    proj: Option<QuantizedConv2d>,
    junction_bits: BitWidth,
}

/// A trained [`ResNet`] lowered to integer-only inference.
///
/// Residual additions and ReLUs run in the dequantized domain (the
/// accelerator's shift-accumulator outputs), with the skip branch quantized
/// at the destination precision per Fig 2.
pub struct DeployedResNet {
    stem: QuantizedConv2d,
    stem_bits: BitWidth,
    blocks: Vec<DeployedBasicBlock>,
    head: QuantizedLinear,
    energy_model: PimEnergyModel,
}

impl DeployedResNet {
    /// Lowers a trained model; full-precision layers deploy at 16-bit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if any layer's weights are empty or
    /// non-finite.
    pub fn from_trained(model: &ResNet) -> Result<Self, QuantError> {
        Self::lower(model, false).map_err(expect_quant)
    }

    /// Like [`DeployedResNet::from_trained`], but unquantized layers are a
    /// typed [`DeployError::Unquantized`] instead of a 16-bit fallback.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] on unquantized layers or non-finite
    /// weights.
    pub fn from_trained_strict(model: &ResNet) -> Result<Self, DeployError> {
        Self::lower(model, true)
    }

    fn lower(model: &ResNet, strict: bool) -> Result<Self, DeployError> {
        let (stem, stem_bits) = lower_conv_block(model.stem(), strict)?;
        let mut blocks = Vec::new();
        for index in 0..model.block_count() {
            let view = model.block_view(index);
            let (conv1, conv1_bits) = lower_conv_block(view.conv1, strict)?;
            let (conv2, _) = lower_conv_block(view.conv2, strict)?;
            let proj = match view.proj {
                Some(p) => Some(lower_conv_block(p, strict)?.0),
                None => None,
            };
            blocks.push(DeployedBasicBlock {
                conv1,
                conv1_bits,
                conv2,
                proj,
                junction_bits: view.junction_bits.unwrap_or(BitWidth::SIXTEEN),
            });
        }
        Ok(Self {
            stem,
            stem_bits,
            blocks,
            head: lower_head(model.head(), strict)?,
            energy_model: PimEnergyModel::paper_table4(),
        })
    }

    /// Overrides the per-MAC energy model (defaults to Table IV).
    pub fn with_energy_model(mut self, energy_model: PimEnergyModel) -> Self {
        self.energy_model = energy_model;
        self
    }

    /// Precisions of the datapath layers: stem, then per block
    /// (conv1, conv2, projection if any), then the classifier.
    pub fn precisions(&self) -> Vec<HwPrecision> {
        let mut out = vec![self.stem.precision()];
        for block in &self.blocks {
            out.push(block.conv1.precision());
            out.push(block.conv2.precision());
            if let Some(p) = &block.proj {
                out.push(p.precision());
            }
        }
        out.push(self.head.precision());
        out
    }

    /// Integer-only inference: logits plus accelerator cost.
    ///
    /// # Panics
    ///
    /// Panics if `images` does not match the model's input shape.
    pub fn run(&self, images: &Tensor) -> (Tensor, DeployStats) {
        let mut stats = DeployStats::default();
        // stem
        let act_q = act_quantizer(BitWidth::SIXTEEN, images.data());
        let (mut x, mac_stats) = self.stem.run(images, &act_q);
        account(
            &self.energy_model,
            &mut stats,
            mac_stats,
            self.stem.precision(),
        );
        x.map_inplace(|v| v.max(0.0));
        let mut carry_bits = self.stem_bits;
        // blocks
        for block in &self.blocks {
            let in_q = act_quantizer(carry_bits, x.data());
            let (mut main, s1) = block.conv1.run(&x, &in_q);
            account(&self.energy_model, &mut stats, s1, block.conv1.precision());
            main.map_inplace(|v| v.max(0.0));
            let mid_q = act_quantizer(block.conv1_bits, main.data());
            let (main, s2) = block.conv2.run(&main, &mid_q);
            account(&self.energy_model, &mut stats, s2, block.conv2.precision());
            // skip path, quantized at the destination precision (Fig 2)
            let mut skip = match &block.proj {
                Some(proj) => {
                    let (s, sp) = proj.run(&x, &in_q);
                    account(&self.energy_model, &mut stats, sp, proj.precision());
                    s
                }
                None => x.clone(),
            };
            let skip_q = act_quantizer(block.junction_bits, skip.data());
            skip_q.fake_quantize_tensor_inplace(&mut skip);
            let mut y = main.add(&skip).expect("main and skip shapes agree");
            y.map_inplace(|v| v.max(0.0));
            carry_bits = block.junction_bits;
            x = y;
        }
        // global average pool + classifier
        let mut gap = GlobalAvgPool::new();
        let pooled = gap.forward(&x);
        let act_q = act_quantizer(carry_bits, pooled.data());
        let (logits, mac_stats) = self.head.run(&pooled, &act_q);
        account(
            &self.energy_model,
            &mut stats,
            mac_stats,
            self.head.precision(),
        );
        (logits, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adq_datasets::SyntheticSpec;
    use adq_nn::train::{evaluate, Dataset};
    use adq_nn::QuantModel;
    use adq_quant::BitWidth;

    fn trained_model() -> (Vgg, Dataset, Dataset) {
        let (train, test) = SyntheticSpec::cifar10_like()
            .with_classes(4)
            .with_resolution(8)
            .with_samples(12, 6)
            .generate();
        let mut model = Vgg::tiny(3, 8, 4, 3);
        let cfg = crate::AdqConfig {
            max_iterations: 2,
            max_epochs_per_iteration: 4,
            min_epochs_per_iteration: 2,
            batch_size: 12,
            ..crate::AdqConfig::fast()
        };
        crate::AdQuantizer::new(cfg).run(&mut model, &train, &test);
        (model, train, test)
    }

    #[test]
    fn deployed_shapes_match_float_model() {
        let (model, _, test) = trained_model();
        let deployed = DeployedVgg::from_trained(&model).unwrap();
        let (logits, stats) = deployed.run(&test.images);
        assert_eq!(logits.dims(), &[test.len(), 4]);
        assert!(stats.macs > 0);
        assert!(stats.energy_uj > 0.0);
        assert_eq!(deployed.conv_layer_count(), 3);
        assert_eq!(deployed.precisions().len(), 4);
    }

    #[test]
    fn integer_inference_agrees_with_float_path() {
        let (mut model, _, test) = trained_model();
        let float_stats = evaluate(&mut model, &test, 12);
        let deployed = DeployedVgg::from_trained(&model).unwrap();
        let (logits, _) = deployed.run(&test.images);
        let mut agree = 0usize;
        let float_logits = model.forward(&test.images, false);
        for i in 0..test.len() {
            if logits.index_axis0(i).argmax() == float_logits.index_axis0(i).argmax() {
                agree += 1;
            }
        }
        let agreement = agree as f64 / test.len() as f64;
        assert!(
            agreement >= 0.75,
            "integer/float classification agreement only {agreement} (float acc {})",
            float_stats.accuracy
        );
    }

    #[test]
    fn golden_lowering_matches_float_forward_at_16_bit() {
        // At 16 bits the quantization grid is ~4 decimal digits finer than
        // the logit magnitudes, so the BN-folded integer datapath must
        // reproduce the float fake-quantized forward pass elementwise — any
        // larger gap means the lowering itself (folding, weight
        // quantization, activation re-quantization) is wrong, not rounding.
        let (mut model, _, test) = trained_model();
        for i in 0..model.layer_count() {
            model.set_bits_of(i, Some(BitWidth::SIXTEEN));
        }
        let float_logits = model.forward(&test.images, false);
        let deployed = DeployedVgg::from_trained(&model).unwrap();
        let (logits, _) = deployed.run(&test.images);
        assert_eq!(logits.dims(), float_logits.dims());
        let scale = float_logits
            .data()
            .iter()
            .fold(1.0f32, |m, &v| m.max(v.abs()));
        for (i, (&got, &want)) in logits.data().iter().zip(float_logits.data()).enumerate() {
            assert!(
                (got - want).abs() <= 0.02 * scale,
                "logit {i}: integer {got} vs float {want} (scale {scale})"
            );
        }
    }

    #[test]
    fn corrupted_weights_are_rejected_at_lowering() {
        use adq_nn::Param;
        let (model, _, _) = trained_model();

        // a NaN anywhere in the weights must surface as a typed error from
        // from_trained, never as a silently-poisoned deployed network
        let mut nan_model = model.clone();
        nan_model.visit_params(&mut |slot: usize, p: &mut Param| {
            if slot == 0 {
                p.value.data_mut()[0] = f32::NAN;
            }
        });
        assert!(DeployedVgg::from_trained(&nan_model).is_err());

        let mut inf_model = model;
        inf_model.visit_params(&mut |_slot: usize, p: &mut Param| {
            if let Some(last) = p.value.data_mut().last_mut() {
                *last = f32::INFINITY;
            }
        });
        assert!(DeployedVgg::from_trained(&inf_model).is_err());
    }

    #[test]
    fn lower_precision_deployment_costs_less_energy() {
        let (model, _, test) = trained_model();
        // force one copy to all-16-bit, one to all-2-bit
        let mut wide = model.clone();
        let mut narrow = model;
        for i in 0..wide.layer_count() {
            wide.set_bits_of(i, Some(BitWidth::SIXTEEN));
            narrow.set_bits_of(i, Some(BitWidth::new(2).unwrap()));
        }
        let (_, wide_stats) = DeployedVgg::from_trained(&wide).unwrap().run(&test.images);
        let (_, narrow_stats) = DeployedVgg::from_trained(&narrow)
            .unwrap()
            .run(&test.images);
        assert!(narrow_stats.energy_uj < wide_stats.energy_uj);
        assert_eq!(narrow_stats.macs, wide_stats.macs);
    }

    #[test]
    fn deployed_resnet_agrees_with_float_path() {
        let (train, test) = SyntheticSpec::cifar10_like()
            .with_classes(4)
            .with_resolution(8)
            .with_samples(12, 6)
            .generate();
        let mut model = adq_nn::ResNet::tiny(3, 8, 4, 5);
        let cfg = crate::AdqConfig {
            max_iterations: 2,
            max_epochs_per_iteration: 4,
            min_epochs_per_iteration: 2,
            batch_size: 12,
            ..crate::AdqConfig::fast()
        };
        crate::AdQuantizer::new(cfg).run(&mut model, &train, &test);
        let float_logits = model.forward(&test.images, false);
        let deployed = DeployedResNet::from_trained(&model).unwrap();
        let (logits, stats) = deployed.run(&test.images);
        assert_eq!(logits.dims(), float_logits.dims());
        assert!(stats.macs > 0 && stats.energy_uj > 0.0);
        let agree = (0..test.len())
            .filter(|&i| logits.index_axis0(i).argmax() == float_logits.index_axis0(i).argmax())
            .count() as f64
            / test.len() as f64;
        assert!(agree >= 0.6, "integer/float agreement only {agree}");
    }

    #[test]
    fn deployed_resnet_counts_projection_layers() {
        let model = adq_nn::ResNet::tiny(3, 8, 4, 6);
        let deployed = DeployedResNet::from_trained(&model).unwrap();
        // stem + block0 (2 convs, identity) + block1 (2 convs + proj) + head
        assert_eq!(deployed.precisions().len(), 1 + 2 + 3 + 1);
    }

    #[test]
    fn strict_lowering_rejects_unquantized_layers() {
        let model = Vgg::tiny(3, 8, 4, 30); // no bits assigned anywhere
        match DeployedVgg::from_trained_strict(&model) {
            Err(DeployError::Unquantized { layer }) => assert_eq!(layer, "conv1"),
            other => panic!("expected Unquantized error, got {:?}", other.err()),
        }
        let resnet = adq_nn::ResNet::tiny(3, 8, 4, 31);
        assert!(matches!(
            DeployedResNet::from_trained_strict(&resnet),
            Err(DeployError::Unquantized { .. })
        ));
    }

    #[test]
    fn strict_lowering_accepts_fully_quantized_models() {
        let (mut model, _, _) = trained_model();
        for i in 0..model.layer_count() {
            model.set_bits_of(i, Some(BitWidth::new(4).unwrap()));
        }
        assert!(DeployedVgg::from_trained_strict(&model).is_ok());
    }

    #[test]
    fn lenient_lowering_counts_unquantized_fallbacks() {
        let model = Vgg::tiny(3, 8, 4, 32); // 3 convs + head, none quantized
        let counter = adq_telemetry::metrics::global().counter("deploy.unquantized_fallback");
        let before = counter.get();
        DeployedVgg::from_trained(&model).unwrap();
        assert_eq!(counter.get() - before, 4);
    }

    #[test]
    fn energy_scales_with_batch_size() {
        let (model, _, test) = trained_model();
        let deployed = DeployedVgg::from_trained(&model).unwrap();
        let one = test.batch(&[0]).0;
        let two = test.batch(&[0, 1]).0;
        let (_, s1) = deployed.run(&one);
        let (_, s2) = deployed.run(&two);
        assert_eq!(s2.macs, 2 * s1.macs);
    }
}
