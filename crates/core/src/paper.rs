//! The paper's published architectures and operating points (Tables II/III).
//!
//! Energy columns of the paper are pure functions of (geometry, per-layer
//! bit-width, per-layer channel count); encoding the printed operating
//! points lets every energy table be regenerated exactly, independent of
//! training stochasticity (DESIGN.md §2).
//!
//! Layer ordering conventions:
//!
//! * **VGG19**: 17 entries — 16 convolutions then the classifier. Max-pools
//!   follow convolutions 2, 4, 8, 12 and 16 (1-based), as in the standard
//!   CIFAR VGG19. A 512→classes classifier follows the final 1×1 spatial
//!   map. (Sanity anchor: the 16-bit baseline has 398.1 M MACs; at Table IV's
//!   276.676 fJ/MAC that is 110.2 µJ — Table V prints 110.154 µJ.)
//! * **ResNet18**: 26 entries — stem, then per basic block
//!   `(conv1, conv2, junction)` for 8 blocks, then the classifier. The
//!   junction entry always equals conv2's (the skip branch is quantized at
//!   the destination precision, Fig 2), which is exactly the pattern in the
//!   printed 26-entry lists.
//! * **Table III(a) VGG19 bits**: the paper's printed row has 21 entries
//!   (16 convs expected) — an obvious typesetting artefact. We reconstruct
//!   it by taking the first 16 entries as the conv bit-widths and pinning
//!   the classifier at 16, and note this in EXPERIMENTS.md.

use adq_energy::{LayerSpec, NetworkSpec};
use adq_quant::BitWidth;
use adq_tensor::Conv2dGeom;

/// VGG19 convolution output channels (unpruned).
pub const VGG19_CHANNELS: [usize; 16] = [
    64, 64, 128, 128, 256, 256, 256, 256, 512, 512, 512, 512, 512, 512, 512, 512,
];

/// Whether a 2×2 max-pool follows each VGG19 convolution.
pub const VGG19_POOL_AFTER: [bool; 16] = [
    false, true, false, true, false, false, false, true, false, false, false, true, false, false,
    false, true,
];

/// Table II (a), iter 2: VGG19/CIFAR-10 layer-wise bit-widths.
pub const TABLE2A_ITER2_BITS: [u32; 17] = [16, 4, 5, 4, 3, 2, 2, 2, 3, 3, 3, 4, 3, 3, 3, 3, 16];

/// Table II (a), iter 2a: same as iter 2 with the 16th convolution removed
/// entirely (its AD stayed very low at 1-bit, so the paper drops it).
pub const TABLE2A_ITER2A_REMOVED_CONV: usize = 15;

/// Table II (b), iter 2: ResNet18/CIFAR-100 bit-widths (26 entries).
pub const TABLE2B_ITER2_BITS: [u32; 26] = [
    16, 5, 3, 3, 11, 1, 1, 11, 4, 4, 10, 4, 4, 11, 3, 3, 9, 3, 3, 9, 3, 3, 6, 1, 1, 16,
];

/// Table II (b), iter 3.
pub const TABLE2B_ITER3_BITS: [u32; 26] = [
    16, 5, 3, 3, 5, 1, 1, 8, 4, 4, 6, 4, 4, 8, 3, 3, 9, 3, 3, 9, 3, 3, 6, 1, 1, 16,
];

/// Table II (c), iter 2: ResNet18/TinyImagenet (trained from a 32-bit
/// baseline, so interior widths may exceed 16).
pub const TABLE2C_ITER2_BITS: [u32; 26] = [
    16, 10, 7, 7, 22, 10, 10, 24, 10, 10, 22, 6, 6, 22, 9, 9, 18, 5, 5, 16, 4, 4, 11, 3, 3, 16,
];

/// Table II (c), iter 3.
pub const TABLE2C_ITER3_BITS: [u32; 26] = [
    16, 3, 7, 7, 16, 2, 2, 17, 3, 3, 15, 6, 6, 15, 9, 9, 9, 5, 5, 7, 4, 4, 4, 3, 3, 16,
];

/// Table II (c), iter 4.
pub const TABLE2C_ITER4_BITS: [u32; 26] = [
    16, 3, 7, 7, 14, 2, 2, 14, 3, 3, 10, 6, 6, 10, 9, 9, 9, 5, 5, 7, 4, 4, 4, 3, 3, 16,
];

/// Table III (a), iter 2: VGG19/CIFAR-10 bit-widths under simultaneous
/// pruning (reconstructed; see module docs).
pub const TABLE3A_ITER2_BITS: [u32; 17] = [16, 4, 5, 9, 4, 3, 5, 2, 2, 2, 3, 5, 3, 3, 4, 3, 16];

/// Table III (a), iter 2: pruned channel counts.
pub const TABLE3A_ITER2_CHANNELS: [usize; 16] = [
    19, 22, 38, 24, 45, 37, 44, 54, 103, 126, 150, 125, 122, 112, 111, 8,
];

/// Table III (b), iter 2: ResNet18/CIFAR-100 per-conv bit-widths
/// (stem + 16 block convs + classifier).
pub const TABLE3B_ITER2_BITS: [u32; 18] =
    [16, 5, 3, 11, 1, 11, 4, 10, 4, 11, 3, 9, 3, 9, 3, 6, 1, 16];

/// Table III (b), iter 2: pruned channels (stem + 16 block convs).
pub const TABLE3B_ITER2_CHANNELS: [usize; 17] = [
    21, 12, 44, 6, 47, 34, 87, 34, 89, 58, 156, 50, 146, 110, 192, 59, 59,
];

/// Table III (b), iter 3 bit-widths.
pub const TABLE3B_ITER3_BITS: [u32; 18] = [16, 5, 3, 5, 1, 8, 4, 6, 4, 8, 3, 9, 3, 9, 3, 6, 1, 16];

/// Table III (b), iter 3 channels.
pub const TABLE3B_ITER3_CHANNELS: [usize; 17] = [
    21, 12, 19, 1, 31, 34, 61, 34, 58, 58, 156, 50, 146, 110, 192, 9, 22,
];

/// Table III (c), iter 2: ResNet18/TinyImagenet bit-widths.
pub const TABLE3C_ITER2_BITS: [u32; 18] = [
    16, 10, 7, 22, 10, 24, 10, 22, 6, 22, 9, 18, 5, 16, 4, 11, 3, 16,
];

/// Table III (c), iter 2 channels.
pub const TABLE3C_ITER2_CHANNELS: [usize; 17] = [
    20, 14, 45, 21, 48, 42, 88, 27, 91, 73, 151, 41, 129, 70, 178, 56, 20,
];

/// ResNet18 unpruned channels (stem + 16 block convs).
pub const RESNET18_CHANNELS: [usize; 17] = [
    64, 64, 64, 64, 64, 128, 128, 128, 128, 256, 256, 256, 256, 512, 512, 512, 512,
];

/// Per-block strides of ResNet18 (blocks 2, 4 and 6 open a new stage).
pub const RESNET18_BLOCK_STRIDES: [usize; 8] = [1, 1, 2, 1, 2, 1, 2, 1];

fn bw(bits: u32) -> BitWidth {
    BitWidth::new(bits).unwrap_or_else(|_| panic!("invalid preset bit-width {bits}"))
}

/// Builds the analytical spec of a (possibly pruned) VGG19.
///
/// `bits` has 17 entries (16 convs + classifier); `channels` has 16.
/// `removed_convs` lists 0-based conv indices dropped from the network
/// (Table II iter 2a removes conv 16, index 15).
///
/// # Panics
///
/// Panics if slice lengths are wrong or a bit-width is invalid.
pub fn vgg19_spec(
    name: impl Into<String>,
    input_hw: usize,
    classes: usize,
    bits: &[u32],
    channels: &[usize],
    removed_convs: &[usize],
) -> NetworkSpec {
    assert_eq!(bits.len(), 17, "VGG19 takes 17 bit-width entries");
    assert_eq!(channels.len(), 16, "VGG19 has 16 convolutions");
    let mut layers = Vec::new();
    let mut hw = input_hw;
    let mut in_channels = 3usize;
    let mut last_out = 3usize;
    for conv in 0..16 {
        if removed_convs.contains(&conv) {
            // layer dropped: its input feeds the next layer; pooling that
            // followed it still happens on the predecessor's map
            if VGG19_POOL_AFTER[conv] {
                hw /= 2;
            }
            continue;
        }
        let out = channels[conv];
        layers.push(LayerSpec::conv(
            Conv2dGeom::new(in_channels, out, 3, 1, 1),
            hw,
            bw(bits[conv]),
        ));
        if VGG19_POOL_AFTER[conv] {
            hw /= 2;
        }
        in_channels = out;
        last_out = out;
    }
    let fc_in = last_out * hw * hw;
    layers.push(LayerSpec::fc(fc_in, classes, bw(bits[16])));
    NetworkSpec::new(name, layers)
}

/// The unpruned VGG19/CIFAR-10 spec at a uniform precision (the paper's
/// baselines).
pub fn vgg19_baseline(input_hw: usize, classes: usize, bits: u32) -> NetworkSpec {
    let all = [bits; 17];
    vgg19_spec(
        format!("vgg19-{bits}bit-baseline"),
        input_hw,
        classes,
        &all,
        &VGG19_CHANNELS,
        &[],
    )
}

/// Builds the analytical spec of a (possibly pruned) ResNet18 from a
/// 26-entry bit list (`[stem, (conv1, conv2, junction)*8, fc]`) and a
/// 17-entry channel list (`[stem, (conv1, conv2)*8]`).
///
/// Projection shortcuts exist at the three stage boundaries (blocks 2, 4
/// and 6); each is a 1×1 stride-2 convolution carried at the junction
/// bit-width, from the previous block's output channels to this block's.
///
/// # Panics
///
/// Panics if slice lengths are wrong or a bit-width is invalid.
pub fn resnet18_spec(
    name: impl Into<String>,
    input_hw: usize,
    classes: usize,
    bits26: &[u32],
    channels: &[usize],
) -> NetworkSpec {
    assert_eq!(bits26.len(), 26, "ResNet18 takes 26 bit-width entries");
    assert_eq!(
        channels.len(),
        17,
        "ResNet18 has a stem plus 16 block convs"
    );
    let mut layers = Vec::new();
    let mut hw = input_hw;
    // stem
    layers.push(LayerSpec::conv(
        Conv2dGeom::new(3, channels[0], 3, 1, 1),
        hw,
        bw(bits26[0]),
    ));
    let mut block_input_channels = channels[0];
    for block in 0..8 {
        let stride = RESNET18_BLOCK_STRIDES[block];
        let c1_out = channels[1 + 2 * block];
        let c2_out = channels[2 + 2 * block];
        let c1_bits = bits26[1 + 3 * block];
        let c2_bits = bits26[2 + 3 * block];
        let junction_bits = bits26[3 + 3 * block];
        layers.push(LayerSpec::conv(
            Conv2dGeom::new(block_input_channels, c1_out, 3, stride, 1),
            hw,
            bw(c1_bits),
        ));
        let hw_after = Conv2dGeom::new(block_input_channels, c1_out, 3, stride, 1).output_size(hw);
        layers.push(LayerSpec::conv(
            Conv2dGeom::new(c1_out, c2_out, 3, 1, 1),
            hw_after,
            bw(c2_bits),
        ));
        if stride != 1 {
            // projection shortcut at the destination precision (Fig 2)
            layers.push(LayerSpec::conv(
                Conv2dGeom::new(block_input_channels, c2_out, 1, stride, 0),
                hw,
                bw(junction_bits),
            ));
        }
        hw = hw_after;
        block_input_channels = c2_out;
    }
    layers.push(LayerSpec::fc(block_input_channels, classes, bw(bits26[25])));
    NetworkSpec::new(name, layers)
}

/// The unpruned ResNet18 spec at a uniform precision.
pub fn resnet18_baseline(input_hw: usize, classes: usize, bits: u32) -> NetworkSpec {
    let all = [bits; 26];
    resnet18_spec(
        format!("resnet18-{bits}bit-baseline"),
        input_hw,
        classes,
        &all,
        &RESNET18_CHANNELS,
    )
}

/// Expands an 18-entry per-conv bit list (Table III ordering: stem + 16
/// block convs + fc) to the 26-entry convention by setting each junction to
/// its block's conv2 bits — the identity the printed 26-entry lists obey.
///
/// # Panics
///
/// Panics if `bits18` does not have 18 entries.
pub fn expand_bits18_to_26(bits18: &[u32]) -> [u32; 26] {
    assert_eq!(bits18.len(), 18, "expected stem + 16 convs + fc");
    let mut out = [0u32; 26];
    out[0] = bits18[0];
    for block in 0..8 {
        let c1 = bits18[1 + 2 * block];
        let c2 = bits18[2 + 2 * block];
        out[1 + 3 * block] = c1;
        out[2 + 3 * block] = c2;
        out[3 + 3 * block] = c2; // junction = destination = conv2
    }
    out[25] = bits18[17];
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adq_energy::EnergyModel;
    use adq_pim::{NetworkEnergyReport, PimEnergyModel};

    #[test]
    fn vgg19_baseline_mac_count_matches_paper_anchor() {
        let spec = vgg19_baseline(32, 10, 16);
        // 398,136,320 MACs (see module docs); Table V: 110.154 uJ at 16-bit
        assert_eq!(spec.mac_count(), 398_136_320);
    }

    #[test]
    fn vgg19_baseline_pim_energy_matches_table5() {
        let spec = vgg19_baseline(32, 10, 16);
        let maps = crate::builders::pim_mappings_from_spec(&spec);
        let report = NetworkEnergyReport::new("vgg19", maps, &PimEnergyModel::paper_table4());
        // paper: 110.154 uJ; our geometry gives 110.16 uJ
        assert!(
            (report.total_uj() - 110.154).abs() < 0.2,
            "got {} uJ",
            report.total_uj()
        );
    }

    #[test]
    fn vgg19_iter2_analytical_efficiency_matches_table2a() {
        let model = EnergyModel::paper_45nm();
        let base = vgg19_baseline(32, 10, 16);
        let quant = vgg19_spec(
            "vgg19-iter2",
            32,
            10,
            &TABLE2A_ITER2_BITS,
            &VGG19_CHANNELS,
            &[],
        );
        let eff = quant.efficiency_vs(&base, &model);
        // Table II (a): 4.16x
        assert!((3.8..5.0).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn vgg19_iter2a_more_efficient_than_iter2() {
        let model = EnergyModel::paper_45nm();
        let base = vgg19_baseline(32, 10, 16);
        let iter2 = vgg19_spec("i2", 32, 10, &TABLE2A_ITER2_BITS, &VGG19_CHANNELS, &[]);
        let iter2a = vgg19_spec(
            "i2a",
            32,
            10,
            &TABLE2A_ITER2_BITS,
            &VGG19_CHANNELS,
            &[TABLE2A_ITER2A_REMOVED_CONV],
        );
        // Table II: 4.16x -> 4.19x
        assert!(iter2a.efficiency_vs(&base, &model) > iter2.efficiency_vs(&base, &model));
    }

    #[test]
    fn resnet18_baseline_mac_count() {
        let spec = resnet18_baseline(32, 100, 16);
        // see DESIGN/EXPERIMENTS: 555.5M MACs -> ~153.7 uJ at Table IV 16-bit
        assert_eq!(spec.mac_count(), 555_468_800);
    }

    #[test]
    fn resnet18_cifar100_iter3_efficiency_matches_table2b() {
        let model = EnergyModel::paper_45nm();
        let base = resnet18_baseline(32, 100, 16);
        let quant = resnet18_spec(
            "resnet18-iter3",
            32,
            100,
            &TABLE2B_ITER3_BITS,
            &RESNET18_CHANNELS,
        );
        let eff = quant.efficiency_vs(&base, &model);
        // Table II (b): 3.19x
        assert!((2.7..3.8).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn resnet18_tinyimagenet_iter4_efficiency_matches_table2c() {
        let model = EnergyModel::paper_45nm();
        let base = resnet18_baseline(64, 200, 32);
        let quant = resnet18_spec(
            "resnet18-tiny-iter4",
            64,
            200,
            &TABLE2C_ITER4_BITS,
            &RESNET18_CHANNELS,
        );
        let eff = quant.efficiency_vs(&base, &model);
        // Table II (c): 4.50x
        assert!((3.8..5.2).contains(&eff), "efficiency {eff}");
    }

    #[test]
    fn pruned_vgg19_reaches_hundreds_fold_efficiency() {
        let model = EnergyModel::paper_45nm();
        let base = vgg19_baseline(32, 10, 16);
        let pruned = vgg19_spec(
            "vgg19-table3a",
            32,
            10,
            &TABLE3A_ITER2_BITS,
            &TABLE3A_ITER2_CHANNELS,
            &[],
        );
        let eff = pruned.efficiency_vs(&base, &model);
        // Table III (a) prints 980x; our strict Table-I arithmetic gives ~71x
        // (see EXPERIMENTS.md) — the claim under test is the order-of-magnitude
        // jump over quantization-only (~4x)
        assert!(eff > 50.0, "efficiency {eff}");
    }

    #[test]
    fn pruned_resnet18_reaches_table3b_scale() {
        let model = EnergyModel::paper_45nm();
        let base = resnet18_baseline(32, 100, 16);
        let bits26 = expand_bits18_to_26(&TABLE3B_ITER3_BITS);
        let pruned = resnet18_spec(
            "resnet18-table3b",
            32,
            100,
            &bits26,
            &TABLE3B_ITER3_CHANNELS,
        );
        let eff = pruned.efficiency_vs(&base, &model);
        // Table III (b) prints 300x at iter 3; strict Table-I arithmetic gives
        // ~35x (see EXPERIMENTS.md) — an order of magnitude over quantization-only
        assert!(eff > 20.0, "efficiency {eff}");
    }

    #[test]
    fn expand_bits18_sets_junction_to_conv2() {
        let bits26 = expand_bits18_to_26(&TABLE3B_ITER2_BITS);
        for block in 0..8 {
            assert_eq!(bits26[3 + 3 * block], bits26[2 + 3 * block]);
        }
        assert_eq!(bits26[0], 16);
        assert_eq!(bits26[25], 16);
    }

    #[test]
    fn printed_26_entry_lists_obey_junction_identity() {
        for bits in [
            TABLE2B_ITER2_BITS,
            TABLE2B_ITER3_BITS,
            TABLE2C_ITER2_BITS,
            TABLE2C_ITER3_BITS,
            TABLE2C_ITER4_BITS,
        ] {
            for block in 0..8 {
                assert_eq!(
                    bits[3 + 3 * block],
                    bits[2 + 3 * block],
                    "junction != conv2 in {bits:?} block {block}"
                );
            }
        }
    }

    #[test]
    fn removed_conv_shrinks_network() {
        let full = vgg19_spec("f", 32, 10, &TABLE2A_ITER2_BITS, &VGG19_CHANNELS, &[]);
        let cut = vgg19_spec(
            "c",
            32,
            10,
            &TABLE2A_ITER2_BITS,
            &VGG19_CHANNELS,
            &[TABLE2A_ITER2A_REMOVED_CONV],
        );
        assert_eq!(cut.layers().len(), full.layers().len() - 1);
        assert!(cut.mac_count() < full.mac_count());
    }
}
