//! Durable checkpoint/resume for Algorithm-1 runs.
//!
//! Algorithm 1 is a long multi-iteration schedule (train to AD saturation,
//! re-quantize, repeat); at production scale a crash at iteration 3 must not
//! discard iterations 1–2. This module captures everything the controller
//! needs to continue a run bit-exactly:
//!
//! * model parameters and batch-norm running statistics (`adq-nn`),
//! * per-layer bit-widths and the structural edits (pruning, dead-layer
//!   removal) that reshaped the model (`adq-quant` / controller),
//! * optimizer moments and timestep ([`adq_nn::AdamState`]),
//! * the exact RNG keystream position driving epoch shuffles,
//! * completed [`IterationRecord`]s and the iteration cursor,
//! * the eqn-4 baseline energy the run normalises against.
//!
//! Files are written atomically (temp file + rename in the same directory)
//! and carry a FNV-1a content checksum in a one-line header, so a process
//! killed mid-write can never leave a checkpoint that silently loads: a
//! truncated or corrupted file is rejected with a typed [`CheckpointError`].

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use adq_nn::train::import_params;
use adq_nn::{AdamState, QuantModel};
use adq_quant::BitWidth;
use adq_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::controller::{AdqConfig, IterationRecord};

/// Current checkpoint format version; files with any other version are
/// rejected with [`CheckpointError::UnsupportedVersion`].
pub const CHECKPOINT_VERSION: u32 = 1;

/// Magic token opening every checkpoint header line.
const MAGIC: &str = "ADQCKPT";

/// Why a checkpoint could not be written or read.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (create, write, rename, read).
    Io(std::io::Error),
    /// The file does not start with a well-formed `ADQCKPT` header —
    /// truncated at byte 0, or not a checkpoint at all.
    MissingHeader,
    /// The header is valid but written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The payload bytes do not match the header checksum — the file was
    /// truncated or corrupted after the header was written.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload actually on disk.
        actual: u64,
    },
    /// The payload passed its checksum but is not a deserializable
    /// [`RunCheckpoint`] (format drift within a version is a bug).
    Malformed(String),
    /// The checkpoint's [`AdqConfig`] disagrees with the resuming
    /// controller's — resuming would not reproduce the original run.
    ConfigMismatch(String),
    /// The checkpoint does not fit the model offered for resumption
    /// (layer count, parameter shapes, or normalisation stats disagree).
    ModelMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(err) => write!(f, "checkpoint i/o error: {err}"),
            CheckpointError::MissingHeader => {
                write!(f, "not a checkpoint file (missing {MAGIC} header)")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (supported: {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint payload corrupted: checksum {actual:016x}, header says {expected:016x}"
            ),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint payload: {msg}"),
            CheckpointError::ConfigMismatch(msg) => write!(f, "config mismatch: {msg}"),
            CheckpointError::ModelMismatch(msg) => write!(f, "model mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(err: std::io::Error) -> Self {
        CheckpointError::Io(err)
    }
}

/// A structural edit the controller applied to the model between
/// iterations. Recorded in application order with the layer indices that
/// were valid *at application time*, so replaying the list onto a freshly
/// built model reproduces the checkpointed architecture exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StructuralOp {
    /// Eqn-5 channel pruning: layer `layer` was pruned to `keep` channels.
    Prune {
        /// Layer index at application time.
        layer: usize,
        /// Channels kept.
        keep: usize,
    },
    /// Table II iter-2a dead-layer removal.
    Remove {
        /// Layer index at application time (pre-removal numbering).
        layer: usize,
    },
}

/// RNG keystream position, as exported by [`adq_tensor::init::rng_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// ChaCha key words derived from the run seed.
    pub key: [u32; 8],
    /// Next block counter.
    pub counter: u64,
    /// Next unserved word within the current block.
    pub index: u32,
}

/// Everything needed to continue an [`crate::AdQuantizer::run`] bit-exactly
/// from an iteration boundary. See the module docs for the field ↔
/// Algorithm-1 state mapping, and DESIGN.md §"Checkpoint & resume".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// The controller configuration of the originating run; resume refuses
    /// to continue under a different configuration.
    pub config: AdqConfig,
    /// 1-based iteration the resumed run starts at.
    pub next_iteration: usize,
    /// Records of all completed iterations, in order.
    pub iterations: Vec<IterationRecord>,
    /// Pruning/removal edits applied so far, in application order.
    pub structural_ops: Vec<StructuralOp>,
    /// Trainable parameter values in stable slot order
    /// ([`adq_nn::train::export_params`]).
    pub params: Vec<Tensor>,
    /// Batch-norm running `(mean, var)` per normalisation layer.
    pub norm_stats: Vec<(Vec<f32>, Vec<f32>)>,
    /// Per-layer bit-widths after the last re-quantization.
    pub bits: Vec<Option<BitWidth>>,
    /// Adam moments and timestep.
    pub optimizer: AdamState,
    /// Exact position of the epoch-shuffle RNG stream.
    pub rng: RngState,
    /// The eqn-4 baseline energy (pJ) computed at run start, so resumed
    /// iterations report the same `mac_reduction` as the original run.
    pub baseline_energy_pj: f64,
    /// Microbatch size of the originating run's data-parallel trainer
    /// (`None` = serial training). Resume refuses to continue under a
    /// different setting: although outcomes are thread-count invariant,
    /// they are not microbatch invariant. Defaults to `None` when absent,
    /// so pre-parallelism checkpoints stay loadable.
    #[serde(default)]
    pub microbatch: Option<usize>,
}

impl RunCheckpoint {
    /// Serialises to the on-disk representation: a checksummed header line
    /// followed by the JSON payload.
    fn to_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        let payload =
            serde_json::to_string(self).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let checksum = fnv1a64(payload.as_bytes());
        let mut out = format!("{MAGIC} {} {checksum:016x}\n", self.version).into_bytes();
        out.extend_from_slice(payload.as_bytes());
        Ok(out)
    }

    /// Writes the checkpoint atomically: serialise to `<path>.tmp` in the
    /// destination directory, fsync, then rename over `path`. Readers
    /// therefore see either the previous complete file or the new complete
    /// file, never a partial write.
    ///
    /// Returns the serialized size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save_atomic(&self, path: &Path) -> Result<u64, CheckpointError> {
        let bytes = self.to_bytes()?;
        let tmp = tmp_path(path);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        if let Err(err) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(err.into());
        }
        Ok(bytes.len() as u64)
    }

    /// Loads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// * [`CheckpointError::Io`] — unreadable file,
    /// * [`CheckpointError::MissingHeader`] — not a checkpoint / truncated
    ///   before the header completed,
    /// * [`CheckpointError::UnsupportedVersion`] — incompatible format,
    /// * [`CheckpointError::ChecksumMismatch`] — truncated or corrupted
    ///   payload; never silently loaded,
    /// * [`CheckpointError::Malformed`] — checksum passed but the payload
    ///   is not a valid [`RunCheckpoint`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let raw = fs::read(path)?;
        let newline = raw
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(CheckpointError::MissingHeader)?;
        let header =
            std::str::from_utf8(&raw[..newline]).map_err(|_| CheckpointError::MissingHeader)?;
        let mut fields = header.split_ascii_whitespace();
        if fields.next() != Some(MAGIC) {
            return Err(CheckpointError::MissingHeader);
        }
        let version: u32 = fields
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(CheckpointError::MissingHeader)?;
        let expected = fields
            .next()
            .and_then(|c| u64::from_str_radix(c, 16).ok())
            .ok_or(CheckpointError::MissingHeader)?;
        if fields.next().is_some() {
            return Err(CheckpointError::MissingHeader);
        }
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let payload = &raw[newline + 1..];
        let actual = fnv1a64(payload);
        if actual != expected {
            return Err(CheckpointError::ChecksumMismatch { expected, actual });
        }
        let text =
            std::str::from_utf8(payload).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let checkpoint: RunCheckpoint =
            serde_json::from_str(text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        Ok(checkpoint)
    }
}

/// Sibling temp path used for the atomic write.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("checkpoint"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// 64-bit FNV-1a over the payload bytes — cheap, dependency-free, and more
/// than enough to detect truncation and bit rot (this is an integrity
/// check, not an authenticity check).
fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Owns a checkpoint directory: one file per completed iteration
/// (`iter-NNNN.ckpt`), written atomically, discovered by scanning.
///
/// # Example
///
/// ```no_run
/// use adq_core::checkpoint::CheckpointManager;
///
/// let manager = CheckpointManager::new("checkpoints/run-a")?;
/// if let Some(checkpoint) = manager.load_latest()? {
///     println!("resumable at iteration {}", checkpoint.next_iteration);
/// }
/// # Ok::<(), adq_core::checkpoint::CheckpointError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
}

impl CheckpointManager {
    /// Creates the directory (and parents) if needed.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint covering completed iteration `iteration`.
    pub fn path_for_iteration(&self, iteration: usize) -> PathBuf {
        self.dir.join(format!("iter-{iteration:04}.ckpt"))
    }

    /// Atomically writes `checkpoint` as the file for its last completed
    /// iteration, returning `(path, bytes)`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, checkpoint: &RunCheckpoint) -> Result<(PathBuf, u64), CheckpointError> {
        let iteration = checkpoint.next_iteration.saturating_sub(1);
        let path = self.path_for_iteration(iteration);
        let bytes = checkpoint.save_atomic(&path)?;
        Ok((path, bytes))
    }

    /// Path of the highest-numbered checkpoint in the directory, if any.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the directory cannot be read.
    pub fn latest(&self) -> Result<Option<PathBuf>, CheckpointError> {
        let mut best: Option<(usize, PathBuf)> = None;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(iteration) = iteration_of(&path) else {
                continue;
            };
            if best.as_ref().is_none_or(|(i, _)| iteration > *i) {
                best = Some((iteration, path));
            }
        }
        Ok(best.map(|(_, path)| path))
    }

    /// Loads the highest-numbered checkpoint, or `None` when the directory
    /// holds none.
    ///
    /// # Errors
    ///
    /// Propagates every [`RunCheckpoint::load`] failure — a corrupted
    /// latest checkpoint is an error, not a silent fresh start.
    pub fn load_latest(&self) -> Result<Option<RunCheckpoint>, CheckpointError> {
        match self.latest()? {
            Some(path) => Ok(Some(RunCheckpoint::load(&path)?)),
            None => Ok(None),
        }
    }
}

/// Rebuilds a checkpoint's *model* state onto `model`, which must be a
/// freshly constructed instance of the originating run's architecture
/// (same constructor arguments; the construction seed is irrelevant
/// because every parameter is overwritten).
///
/// Replays the structural edits in application order, restores per-layer
/// bit-widths, imports parameters, and installs batch-norm running
/// statistics — everything inference needs. Training-only state
/// (optimizer moments, RNG position, iteration records) is *not* touched;
/// the controller layers that on top when resuming a run, while serving
/// and deployment paths use this alone to lower a trained artifact.
///
/// # Errors
///
/// Returns [`CheckpointError::ModelMismatch`] when the model rejects a
/// structural replay, the layer count after replay disagrees with the
/// checkpoint, or parameter/norm-stat shapes do not line up — i.e. the
/// model handed in was not built like the checkpointed one.
pub fn restore_model(
    model: &mut dyn QuantModel,
    ckpt: &RunCheckpoint,
) -> Result<(), CheckpointError> {
    // replay the original run's structural edits, in application order,
    // to rebuild the checkpointed architecture
    for op in &ckpt.structural_ops {
        let ok = match *op {
            StructuralOp::Prune { layer, keep } => model.prune_layer_to(layer, keep),
            StructuralOp::Remove { layer } => model.remove_layer(layer),
        };
        if !ok {
            return Err(CheckpointError::ModelMismatch(format!(
                "model rejected structural replay of {op:?}"
            )));
        }
    }
    if model.layer_count() != ckpt.bits.len() {
        return Err(CheckpointError::ModelMismatch(format!(
            "{} layers after structural replay, checkpoint has {}",
            model.layer_count(),
            ckpt.bits.len()
        )));
    }
    for (idx, bits) in ckpt.bits.iter().enumerate() {
        model.set_bits_of(idx, *bits);
    }
    import_params(model, &ckpt.params).map_err(CheckpointError::ModelMismatch)?;
    model
        .set_norm_stats(&ckpt.norm_stats)
        .map_err(CheckpointError::ModelMismatch)?;
    Ok(())
}

/// Parses `iter-NNNN.ckpt` file names.
fn iteration_of(path: &Path) -> Option<usize> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("iter-")?
        .strip_suffix(".ckpt")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/ckpt-unit-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn sample_checkpoint(next_iteration: usize) -> RunCheckpoint {
        RunCheckpoint {
            version: CHECKPOINT_VERSION,
            config: AdqConfig::fast(),
            next_iteration,
            iterations: Vec::new(),
            structural_ops: vec![StructuralOp::Prune { layer: 1, keep: 4 }],
            params: vec![Tensor::from_slice(&[1.0, -2.0, 0.5])],
            norm_stats: vec![(vec![0.1], vec![0.9])],
            bits: vec![Some(BitWidth::SIXTEEN), Some(BitWidth::ONE), None],
            optimizer: AdamState {
                lr: 2e-3,
                t: 17,
                moments: vec![Some((Tensor::zeros(&[3]), Tensor::ones(&[3]))), None],
            },
            rng: RngState {
                key: [1, 2, 3, 4, 5, 6, 7, 8],
                counter: 42,
                index: 3,
            },
            baseline_energy_pj: 123.456,
            microbatch: Some(4),
        }
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("iter-0001.ckpt");
        let ckpt = sample_checkpoint(2);
        ckpt.save_atomic(&path).expect("save");
        let back = RunCheckpoint::load(&path).expect("load");
        assert_eq!(back, ckpt);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_without_microbatch_field_defaults_to_serial() {
        // checkpoints written before data-parallel training lack the field
        let json = serde_json::to_string(&sample_checkpoint(2)).expect("serialise");
        assert!(json.contains("\"microbatch\":4"), "json was: {json}");
        let stripped = json.replace(",\"microbatch\":4", "");
        assert_ne!(stripped, json, "expected the field to be removed");
        let back: RunCheckpoint = serde_json::from_str(&stripped).expect("deserialise");
        assert_eq!(back.microbatch, None);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = scratch_dir("truncated");
        let path = dir.join("iter-0001.ckpt");
        sample_checkpoint(2).save_atomic(&path).expect("save");
        let raw = fs::read(&path).expect("read");
        // simulate a crash mid-write of a non-atomic writer
        fs::write(&path, &raw[..raw.len() - 20]).expect("truncate");
        match RunCheckpoint::load(&path) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_is_rejected() {
        let dir = scratch_dir("bitrot");
        let path = dir.join("iter-0001.ckpt");
        sample_checkpoint(2).save_atomic(&path).expect("save");
        let mut raw = fs::read(&path).expect("read");
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        fs::write(&path, &raw).expect("corrupt");
        assert!(matches!(
            RunCheckpoint::load(&path),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_checkpoint_file_is_rejected() {
        let dir = scratch_dir("garbage");
        let path = dir.join("iter-0001.ckpt");
        fs::write(&path, b"{\"not\": \"a checkpoint\"}\n").expect("write");
        assert!(matches!(
            RunCheckpoint::load(&path),
            Err(CheckpointError::MissingHeader)
        ));
        fs::write(&path, b"no newline at all").expect("write");
        assert!(matches!(
            RunCheckpoint::load(&path),
            Err(CheckpointError::MissingHeader)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_version_is_rejected() {
        let dir = scratch_dir("version");
        let path = dir.join("iter-0001.ckpt");
        let mut ckpt = sample_checkpoint(2);
        ckpt.version = CHECKPOINT_VERSION + 1;
        // bypass save-side version pinning by writing the raw form
        let bytes = ckpt.to_bytes().expect("serialise");
        let mut text = String::from_utf8(bytes).expect("utf8");
        text = text.replacen(
            &format!("{MAGIC} {CHECKPOINT_VERSION} "),
            &format!("{MAGIC} {} ", CHECKPOINT_VERSION + 1),
            1,
        );
        fs::write(&path, text).expect("write");
        assert!(matches!(
            RunCheckpoint::load(&path),
            Err(CheckpointError::UnsupportedVersion(v)) if v == CHECKPOINT_VERSION + 1
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manager_finds_latest() {
        let dir = scratch_dir("latest");
        let manager = CheckpointManager::new(&dir).expect("manager");
        assert!(manager.load_latest().expect("empty dir ok").is_none());
        manager.save(&sample_checkpoint(2)).expect("save 1");
        manager.save(&sample_checkpoint(4)).expect("save 3");
        manager.save(&sample_checkpoint(3)).expect("save 2");
        let latest = manager.load_latest().expect("load").expect("present");
        assert_eq!(latest.next_iteration, 4);
        assert_eq!(
            manager.latest().expect("scan").expect("present"),
            manager.path_for_iteration(3)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_save_leaves_no_tmp_file() {
        let dir = scratch_dir("tmpfile");
        let manager = CheckpointManager::new(&dir).expect("manager");
        manager.save(&sample_checkpoint(2)).expect("save");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // published FNV-1a 64 test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
