use std::sync::Arc;

use adq_ad::{DensityHistory, SaturationDetector};
use adq_energy::EnergyModel;
use adq_nn::train::{
    evaluate_observed, export_params, train_epoch_observed, train_epoch_parallel_observed, Dataset,
};
use adq_nn::{Adam, Optimizer, QuantModel};
use adq_quant::BitWidth;
use adq_telemetry::span::{self, SpanGuard};
use adq_telemetry::{NullSink, TelemetryEvent, TelemetrySink};
use serde::{Deserialize, Serialize};

use crate::builders::network_spec_from_stats;
use crate::checkpoint::{
    CheckpointError, CheckpointManager, RngState, RunCheckpoint, StructuralOp, CHECKPOINT_VERSION,
};
use crate::complexity::{training_complexity, IterationCost};

/// Configuration of AD-based channel pruning (eqn 5), applied simultaneously
/// with re-quantization when enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneConfig {
    /// Lower bound on channels per layer (a layer is never pruned away
    /// entirely by eqn 5).
    pub min_channels: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self { min_channels: 2 }
    }
}

/// Policy for removing dead layers (the paper's Table II iter-2a move):
/// a layer already at `at_most_bits` whose AD stays below `ad_below` is
/// deleted entirely ("the AD of the last layer is very low in spite of
/// extreme quantization … suggesting that we can entirely remove that
/// layer").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeadLayerPolicy {
    /// Bit-width at or below which a layer is a removal candidate.
    pub at_most_bits: u32,
    /// AD below which the candidate is considered dead.
    pub ad_below: f64,
}

impl Default for DeadLayerPolicy {
    /// 1-bit layers with AD under 0.05.
    fn default() -> Self {
        Self {
            at_most_bits: 1,
            ad_below: 0.05,
        }
    }
}

/// Configuration of the in-training quantization controller (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdqConfig {
    /// Starting precision of every quantizable interior layer
    /// (`k_l⁽⁰⁾ = 16` in the paper; 32 for the TinyImagenet runs).
    pub initial_bits: BitWidth,
    /// Precision the first conv and final classifier are held at
    /// throughout (the paper never quantizes them below 16-bit).
    pub full_precision_bits: BitWidth,
    /// Maximum quantization iterations `N`.
    pub max_iterations: usize,
    /// Epoch budget per iteration (the saturation check can end an
    /// iteration earlier).
    pub max_epochs_per_iteration: usize,
    /// Epochs an iteration must train before the saturation check may fire.
    pub min_epochs_per_iteration: usize,
    /// The per-layer AD saturation detector.
    pub saturation: SaturationDetector,
    /// Mean network AD at which the loop declares convergence
    /// ("AD reaches ~1.0 when further quantization is not possible").
    pub converged_ad: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Enables simultaneous AD-based pruning.
    pub prune: Option<PruneConfig>,
    /// Enables iter-2a removal of dead layers.
    pub remove_dead_layers: Option<DeadLayerPolicy>,
    /// Epoch count of the full-precision baseline schedule that the
    /// training-complexity metric (eqn 4) normalises against.
    pub baseline_epochs: usize,
    /// Seed for shuffling (model weights are seeded at construction).
    pub seed: u64,
}

impl AdqConfig {
    /// Paper-flavoured defaults scaled to the synthetic workloads:
    /// 16-bit start, up to 4 iterations.
    pub fn paper_default() -> Self {
        Self {
            initial_bits: BitWidth::SIXTEEN,
            full_precision_bits: BitWidth::SIXTEEN,
            max_iterations: 4,
            max_epochs_per_iteration: 30,
            min_epochs_per_iteration: 5,
            saturation: SaturationDetector::new(4, 0.01),
            converged_ad: 0.98,
            batch_size: 32,
            lr: 2e-3,
            prune: None,
            remove_dead_layers: None,
            baseline_epochs: 60,
            seed: 0,
        }
    }

    /// Small budget for tests and quick examples.
    pub fn fast() -> Self {
        Self {
            max_iterations: 3,
            max_epochs_per_iteration: 4,
            min_epochs_per_iteration: 2,
            saturation: SaturationDetector::new(2, 0.05),
            baseline_epochs: 8,
            ..Self::paper_default()
        }
    }

    /// Enables pruning with the default floor.
    pub fn with_pruning(mut self) -> Self {
        self.prune = Some(PruneConfig::default());
        self
    }

    /// Enables iter-2a dead-layer removal with the default policy.
    pub fn with_layer_removal(mut self) -> Self {
        self.remove_dead_layers = Some(DeadLayerPolicy::default());
        self
    }
}

impl Default for AdqConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Everything recorded about one quantization iteration — one row of the
/// paper's Tables II/III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// 1-based iteration number (`iter` in Algorithm 1).
    pub iteration: usize,
    /// Per-layer bit-widths of the model *during* this iteration.
    pub bits: Vec<Option<BitWidth>>,
    /// Per-layer output channel counts during this iteration.
    pub channels: Vec<usize>,
    /// Epochs actually trained before AD saturated.
    pub epochs_trained: usize,
    /// Per-layer AD measured over the final epoch.
    pub densities: Vec<f64>,
    /// Mean of `densities` — the paper's "Total AD" column.
    pub total_ad: f64,
    /// Test accuracy at the end of the iteration.
    pub test_accuracy: f64,
    /// Training accuracy over the final epoch.
    pub train_accuracy: f64,
    /// Per-epoch, per-layer AD (epoch-major) — the Fig 1/3/4 curves.
    pub ad_history: Vec<Vec<f64>>,
    /// Per-epoch training accuracy.
    pub accuracy_history: Vec<f64>,
    /// Analytical energy reduction of a training step of this iteration's
    /// model relative to the initial-precision model (the
    /// `MAC reduction_i` of eqn 4; 1.0 for iteration 1).
    pub mac_reduction: f64,
}

/// The full result of an Algorithm-1 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdqOutcome {
    /// One record per quantization iteration, in order.
    pub iterations: Vec<IterationRecord>,
    /// eqn 4, normalised to [`AdqConfig::baseline_epochs`].
    pub training_complexity: f64,
    /// The baseline epoch count used for normalisation.
    pub baseline_epochs: usize,
}

impl AdqOutcome {
    /// The last iteration's record.
    ///
    /// # Panics
    ///
    /// Panics if the run produced no iterations (impossible via
    /// [`AdQuantizer::run`]).
    pub fn final_record(&self) -> &IterationRecord {
        self.iterations
            .last()
            .expect("run always records iterations")
    }

    /// Per-layer bit-widths of the final mixed-precision model.
    pub fn final_bits(&self) -> &[Option<BitWidth>] {
        &self.final_record().bits
    }

    /// Total epochs trained across all iterations.
    pub fn total_epochs(&self) -> usize {
        self.iterations.iter().map(|r| r.epochs_trained).sum()
    }
}

/// The in-training quantization controller — Algorithm 1 of the paper.
///
/// Drives any [`QuantModel`]: trains, watches per-layer Activation Density,
/// re-quantizes with eqn 3 when AD saturates, optionally prunes with eqn 5,
/// and repeats until AD stops changing (≈ 1.0 everywhere).
///
/// # Example
///
/// ```no_run
/// use adq_core::{AdqConfig, AdQuantizer};
/// use adq_datasets::SyntheticSpec;
/// use adq_nn::Vgg;
///
/// let (train, test) = SyntheticSpec::cifar10_like().generate();
/// let mut model = Vgg::small(3, 16, 10, 1);
/// let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
/// assert!(!outcome.iterations.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdQuantizer {
    config: AdqConfig,
    /// Microbatch size for intra-batch data-parallel training (`None` =
    /// serial). Kept out of [`AdqConfig`] so checkpoints taken under
    /// serial training stay loadable, and because it changes *how* an
    /// outcome is computed, not *what* Algorithm 1 does.
    #[serde(default)]
    microbatch: Option<usize>,
}

impl AdQuantizer {
    /// Creates a controller.
    pub fn new(config: AdqConfig) -> Self {
        Self {
            config,
            microbatch: None,
        }
    }

    /// Enables intra-batch data parallelism: every training batch is split
    /// into `microbatch`-sized slices that run forward/backward on model
    /// replicas across rayon workers, with a deterministic fixed-tree
    /// gradient reduction. The [`AdqOutcome`] is bit-identical at any
    /// worker count, but differs from serial training unless
    /// `microbatch >= batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `microbatch` is zero.
    pub fn with_parallelism(mut self, microbatch: usize) -> Self {
        assert!(microbatch > 0, "microbatch size must be positive");
        self.microbatch = Some(microbatch);
        self
    }

    /// The configured microbatch size (`None` = serial training).
    pub fn microbatch(&self) -> Option<usize> {
        self.microbatch
    }

    /// The configuration.
    pub fn config(&self) -> &AdqConfig {
        &self.config
    }

    /// Attaches a telemetry sink, yielding a runner whose `run`/
    /// `run_baseline` emit the full event stream to it.
    pub fn with_telemetry(self, sink: Arc<dyn TelemetrySink>) -> InstrumentedAdQuantizer {
        InstrumentedAdQuantizer {
            quantizer: self,
            sink,
        }
    }

    /// Runs Algorithm 1 to completion on `model`.
    ///
    /// The model's first and last layers are pinned to
    /// [`AdqConfig::full_precision_bits`]; every interior layer starts at
    /// [`AdqConfig::initial_bits`] and is re-quantized by eqn 3 whenever its
    /// AD saturates, until the network's mean AD reaches
    /// [`AdqConfig::converged_ad`] or the bit-widths stop changing.
    pub fn run(&self, model: &mut dyn QuantModel, train: &Dataset, test: &Dataset) -> AdqOutcome {
        self.run_with_sink(model, train, test, &NullSink)
    }

    /// [`AdQuantizer::run`] with every lifecycle step emitted to `sink`.
    ///
    /// Telemetry is observation-only: the returned [`AdqOutcome`] is
    /// identical whatever sink is attached (the default is the no-op
    /// [`NullSink`]).
    pub fn run_with_sink(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        sink: &dyn TelemetrySink,
    ) -> AdqOutcome {
        self.run_impl(model, train, test, sink, None, None)
            .expect("run without checkpointing cannot fail")
    }

    /// [`AdQuantizer::run_with_sink`] that additionally writes a durable
    /// [`RunCheckpoint`] into `manager`'s directory after every iteration
    /// that re-quantizes and continues. A process killed mid-run can then
    /// be continued with [`AdQuantizer::resume_from`] instead of starting
    /// over.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if a checkpoint cannot be written;
    /// training state up to that point is lost with the process, never
    /// half-written to disk.
    pub fn run_checkpointed(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        sink: &dyn TelemetrySink,
        manager: &CheckpointManager,
    ) -> Result<AdqOutcome, CheckpointError> {
        self.run_impl(model, train, test, sink, Some(manager), None)
    }

    /// Continues an interrupted run from `checkpoint`, producing the same
    /// [`AdqOutcome`] the uninterrupted run would have produced.
    ///
    /// `model` must be a freshly built instance of the *original* run's
    /// starting model (same constructor, same seed): the checkpoint's
    /// structural edits are replayed onto it, then parameters, bit-widths,
    /// normalisation statistics, optimizer moments and the RNG position are
    /// restored. Pass `manager` to keep writing checkpoints while the
    /// resumed run progresses.
    ///
    /// # Errors
    ///
    /// * [`CheckpointError::ConfigMismatch`] — this controller's config is
    ///   not the one the checkpoint was taken under,
    /// * [`CheckpointError::ModelMismatch`] — `model` does not match the
    ///   checkpoint (wrong architecture, shapes, or normalisation layout),
    /// * [`CheckpointError::Io`] — a new checkpoint could not be written.
    pub fn resume_from(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        sink: &dyn TelemetrySink,
        checkpoint: RunCheckpoint,
        manager: Option<&CheckpointManager>,
    ) -> Result<AdqOutcome, CheckpointError> {
        self.run_impl(model, train, test, sink, manager, Some(checkpoint))
    }

    // indexed loops: `idx` addresses per-layer densities and the model's
    // index-based interface together
    #[allow(clippy::needless_range_loop)]
    fn run_impl(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        sink: &dyn TelemetrySink,
        manager: Option<&CheckpointManager>,
        resume: Option<RunCheckpoint>,
    ) -> Result<AdqOutcome, CheckpointError> {
        let cfg = &self.config;
        let count = model.layer_count();
        assert!(count >= 2, "model needs at least two quantizable layers");
        let energy_model = EnergyModel::paper_45nm();
        let mut optimizer = Adam::new(cfg.lr);

        let (mut iterations, mut structural_ops, mut rng, baseline_energy, start_iteration);
        if let Some(ckpt) = resume {
            if ckpt.config != *cfg {
                return Err(CheckpointError::ConfigMismatch(format!(
                    "resuming controller configured differently from checkpoint \
                     (seed {} vs {}, {} vs {} max iterations, ...)",
                    cfg.seed, ckpt.config.seed, cfg.max_iterations, ckpt.config.max_iterations,
                )));
            }
            if ckpt.microbatch != self.microbatch {
                return Err(CheckpointError::ConfigMismatch(format!(
                    "resuming with microbatch {:?}, checkpoint was taken under {:?} \
                     (outcomes are thread-count invariant but not microbatch invariant)",
                    self.microbatch, ckpt.microbatch,
                )));
            }
            crate::checkpoint::restore_model(model, &ckpt)?;
            optimizer.import_state(ckpt.optimizer);
            rng = adq_tensor::init::rng_from_state(ckpt.rng.key, ckpt.rng.counter, ckpt.rng.index);
            baseline_energy = ckpt.baseline_energy_pj;
            iterations = ckpt.iterations;
            structural_ops = ckpt.structural_ops;
            start_iteration = ckpt.next_iteration;
            sink.record(&TelemetryEvent::RunResumed {
                run: "adq.run".to_string(),
                next_iteration: start_iteration,
                completed_iterations: iterations.len(),
            });
        } else {
            // k_l^(0): pin the ends, initialise the interior
            model.set_bits_of(0, Some(cfg.full_precision_bits));
            model.set_bits_of(count - 1, Some(cfg.full_precision_bits));
            for idx in 1..count - 1 {
                model.set_bits_of(idx, Some(cfg.initial_bits));
            }
            sink.record(&TelemetryEvent::RunStarted {
                run: "adq.run".to_string(),
                config: serde_json::to_value(cfg),
                seed: cfg.seed,
            });
            // the eqn-4 baseline: the unquantized-geometry model at k^(0)
            let baseline_spec =
                network_spec_from_stats("baseline", &model.layer_stats(), cfg.initial_bits)
                    .with_uniform_bits(cfg.initial_bits);
            baseline_energy = baseline_spec.energy_pj(&energy_model);
            sink.record(&TelemetryEvent::EnergyEstimated {
                label: "baseline".to_string(),
                total_pj: baseline_energy,
                efficiency_vs_baseline: 1.0,
            });
            rng = adq_tensor::init::rng(cfg.seed);
            iterations = Vec::new();
            structural_ops = Vec::new();
            start_iteration = 1;
        }

        sink.record(&TelemetryEvent::WorkerPoolConfigured {
            threads: adq_tensor::dispatch::current_num_threads(),
            microbatch: self.microbatch,
        });

        let metrics = adq_telemetry::metrics::global();
        let train_batches = metrics.counter("core.train_batches");
        let eval_batches = metrics.counter("core.eval_batches");
        // Live-run gauges: last-write-wins progress values the metrics
        // endpoint serves mid-run (Prometheus scrapers, `adq-watch`).
        // Observation-only — nothing reads them back into the run.
        let run_iteration = metrics.gauge("run.iteration");
        let run_epoch = metrics.gauge("run.epoch");
        let run_loss = metrics.gauge("run.loss");
        let run_accuracy = metrics.gauge("run.accuracy");
        let run_total_ad = metrics.gauge("run.total_ad");

        for iteration in start_iteration..=cfg.max_iterations {
            // The iteration body runs inside a labeled block yielding the
            // loop-exit decision so the iteration's span guards close
            // before the per-iteration span drain below.
            let stop = 'iteration: {
                let _iteration_span = phase_span("adq.iteration", iteration);
                // layer removal can shrink the model between iterations
                let count = model.layer_count();
                let mut histories: Vec<DensityHistory> =
                    (0..count).map(|_| DensityHistory::new()).collect();
                let mut accuracy_history = Vec::new();
                let mut epochs_trained = 0;
                let mut last_train_acc = 0.0;
                let mut train_span = phase_span("adq.phase.train", iteration);
                for epoch in 1..=cfg.max_epochs_per_iteration {
                    let mut epoch_span = phase_span("adq.epoch", iteration);
                    epoch_span.attr("epoch", epoch);
                    model.reset_densities();
                    let stats = match self.microbatch {
                        Some(microbatch) => train_epoch_parallel_observed(
                            model,
                            train,
                            &mut optimizer,
                            cfg.batch_size,
                            microbatch,
                            &mut rng,
                            &mut |_| train_batches.inc(),
                        ),
                        None => train_epoch_observed(
                            model,
                            train,
                            &mut optimizer,
                            cfg.batch_size,
                            &mut rng,
                            &mut |_| train_batches.inc(),
                        ),
                    };
                    epochs_trained = epoch;
                    last_train_acc = stats.accuracy;
                    accuracy_history.push(stats.accuracy);
                    let mut ad_span = phase_span("adq.phase.ad_measure", iteration);
                    ad_span.attr("epoch", epoch);
                    for (idx, history) in histories.iter_mut().enumerate() {
                        history.record(model.density_of(idx).clamp(0.0, 1.0));
                    }
                    sink.record(&TelemetryEvent::EpochCompleted {
                        iteration,
                        epoch,
                        loss: stats.loss,
                        accuracy: stats.accuracy,
                    });
                    run_iteration.set(iteration as f64);
                    run_epoch.set(epoch as f64);
                    run_loss.set(stats.loss);
                    run_accuracy.set(stats.accuracy);
                    let epoch_densities: Vec<f64> = histories
                        .iter()
                        .map(|h| h.latest().unwrap_or(0.0))
                        .collect();
                    run_total_ad.set(mean(&epoch_densities));
                    sink.record(&TelemetryEvent::DensityMeasured {
                        iteration,
                        epoch,
                        total_ad: mean(&epoch_densities),
                        densities: epoch_densities,
                    });
                    let saturated = histories.iter().all(|h| h.is_saturated(&cfg.saturation));
                    if epoch >= cfg.min_epochs_per_iteration && saturated {
                        sink.record(&TelemetryEvent::SaturationDetected {
                            iteration,
                            epoch,
                            window: cfg.saturation.window(),
                            tolerance: cfg.saturation.tolerance(),
                        });
                        break;
                    }
                }
                train_span.attr("epochs", epochs_trained);
                drop(train_span);

                let densities: Vec<f64> = histories
                    .iter()
                    .map(|h| h.latest().unwrap_or(0.0))
                    .collect();
                let total_ad = mean(&densities);
                let test_stats = {
                    let _evaluate_span = phase_span("adq.phase.evaluate", iteration);
                    evaluate_observed(model, test, cfg.batch_size, &mut |_| eval_batches.inc())
                };
                let (own_energy, mac_reduction) = {
                    let _energy_span = phase_span("adq.phase.energy_eval", iteration);
                    let spec =
                        network_spec_from_stats("iter", &model.layer_stats(), cfg.initial_bits);
                    let own_energy = spec.energy_pj(&energy_model);
                    let mac_reduction = if own_energy > 0.0 {
                        baseline_energy / own_energy
                    } else {
                        1.0
                    };
                    (own_energy, mac_reduction)
                };
                sink.record(&TelemetryEvent::EnergyEstimated {
                    label: format!("iteration-{iteration}"),
                    total_pj: own_energy,
                    efficiency_vs_baseline: mac_reduction,
                });
                let ad_history: Vec<Vec<f64>> = (0..epochs_trained)
                    .map(|e| histories.iter().map(|h| h.samples()[e]).collect())
                    .collect();
                iterations.push(IterationRecord {
                    iteration,
                    bits: (0..count).map(|i| model.bits_of(i)).collect(),
                    channels: (0..count).map(|i| model.out_channels_of(i)).collect(),
                    epochs_trained,
                    densities: densities.clone(),
                    total_ad,
                    test_accuracy: test_stats.accuracy,
                    train_accuracy: last_train_acc,
                    ad_history,
                    accuracy_history,
                    mac_reduction,
                });
                let record = iterations.last().expect("just pushed");
                sink.record(&TelemetryEvent::IterationCompleted {
                    iteration,
                    epochs_trained,
                    test_accuracy: record.test_accuracy,
                    record: serde_json::to_value(record),
                });

                if iteration == cfg.max_iterations {
                    break 'iteration true;
                }
                // convergence: AD ≈ 1 everywhere
                if total_ad >= cfg.converged_ad {
                    break 'iteration true;
                }
                // eqn 3 re-quantization of interior layers
                let mut any_change = false;
                {
                    let _bitwidth_span = phase_span("adq.phase.bitwidth_update", iteration);
                    for idx in 1..count - 1 {
                        let current = model
                            .bits_of(idx)
                            .expect("interior layers were initialised with bits");
                        let updated = current.scaled_by_density(densities[idx]);
                        sink.record(&TelemetryEvent::BitWidthAssigned {
                            iteration,
                            layer: idx,
                            old_bits: current.get(),
                            new_bits: updated.get(),
                        });
                        // Current bit schedule as gauges, one per layer,
                        // for the live endpoint's dashboard view.
                        metrics
                            .gauge(&format!("run.bits.layer{idx}"))
                            .set(updated.get() as f64);
                        if updated != current {
                            any_change = true;
                            model.set_bits_of(idx, Some(updated));
                        }
                    }
                }
                {
                    let _prune_span = phase_span("adq.phase.prune", iteration);
                    // eqn 5 simultaneous pruning
                    if let Some(prune) = cfg.prune {
                        for idx in 1..count - 1 {
                            let channels = model.out_channels_of(idx);
                            let keep = ((channels as f64) * densities[idx]).round() as usize;
                            let keep = keep.clamp(prune.min_channels.min(channels), channels);
                            if keep < channels && model.prune_layer_to(idx, keep) {
                                any_change = true;
                                structural_ops.push(StructuralOp::Prune { layer: idx, keep });
                                sink.record(&TelemetryEvent::LayerPruned {
                                    iteration,
                                    layer: idx,
                                    old_channels: channels,
                                    new_channels: keep,
                                });
                            }
                        }
                        // pruned shapes invalidate optimizer state
                        optimizer.reset_state();
                    }
                    // iter-2a: delete layers that stay dead at extreme
                    // quantization. High-to-low order keeps the densities
                    // indices valid while the model shrinks.
                    if let Some(policy) = cfg.remove_dead_layers {
                        for idx in (1..densities.len().saturating_sub(1)).rev() {
                            if idx >= model.layer_count().saturating_sub(1) {
                                continue;
                            }
                            let dead = model
                                .bits_of(idx)
                                .is_some_and(|b| b.get() <= policy.at_most_bits)
                                && densities[idx] <= policy.ad_below;
                            if dead && model.remove_layer(idx) {
                                any_change = true;
                                optimizer.reset_state();
                                structural_ops.push(StructuralOp::Remove { layer: idx });
                                sink.record(&TelemetryEvent::LayerRemoved {
                                    iteration,
                                    layer: idx,
                                });
                            }
                        }
                    }
                }
                if !any_change {
                    break 'iteration true; // fixed point: k_l stable for every layer
                }
                // the run continues into iteration + 1: durably capture the
                // exact state it will continue from
                if let Some(manager) = manager {
                    let _checkpoint_span = phase_span("adq.phase.checkpoint", iteration);
                    let (key, counter, index) = adq_tensor::init::rng_state(&rng);
                    let checkpoint = RunCheckpoint {
                        version: CHECKPOINT_VERSION,
                        config: *cfg,
                        next_iteration: iteration + 1,
                        iterations: iterations.clone(),
                        structural_ops: structural_ops.clone(),
                        params: export_params(model),
                        norm_stats: model.norm_stats(),
                        bits: (0..model.layer_count()).map(|i| model.bits_of(i)).collect(),
                        optimizer: optimizer.export_state(),
                        rng: RngState {
                            key,
                            counter,
                            index,
                        },
                        baseline_energy_pj: baseline_energy,
                        microbatch: self.microbatch,
                    };
                    let (path, bytes) = manager.save(&checkpoint)?;
                    sink.record(&TelemetryEvent::CheckpointSaved {
                        iteration,
                        path: path.display().to_string(),
                        bytes,
                    });
                }
                false
            };
            // Stream this iteration's spans out while they are fresh;
            // with tracing off the buffers are empty and this is a no-op.
            span::drain_into(sink);
            if stop {
                break;
            }
        }

        let costs: Vec<IterationCost> = iterations
            .iter()
            .map(|r| IterationCost::new(r.mac_reduction.max(1e-9), r.epochs_trained))
            .collect();
        let outcome = AdqOutcome {
            training_complexity: training_complexity(&costs, cfg.baseline_epochs),
            baseline_epochs: cfg.baseline_epochs,
            iterations,
        };
        sink.record(&TelemetryEvent::RunCompleted {
            iterations: outcome.iterations.len(),
            training_complexity: outcome.training_complexity,
            final_accuracy: outcome.final_record().test_accuracy,
        });
        // Catch spans recorded after the last iteration drain.
        span::drain_into(sink);
        sink.flush();
        Ok(outcome)
    }

    /// Trains `model` at a fixed uniform precision for the full epoch
    /// budget, recording AD trajectories — the paper's baseline runs
    /// (Table II iter 1, Fig 3).
    pub fn run_baseline(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        epochs: usize,
    ) -> IterationRecord {
        self.run_baseline_with_sink(model, train, test, epochs, &NullSink)
    }

    /// [`AdQuantizer::run_baseline`] with the epoch/density/completion
    /// events emitted to `sink` (observation-only, like
    /// [`AdQuantizer::run_with_sink`]).
    pub fn run_baseline_with_sink(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        epochs: usize,
        sink: &dyn TelemetrySink,
    ) -> IterationRecord {
        let cfg = &self.config;
        let count = model.layer_count();
        for idx in 0..count {
            model.set_bits_of(idx, Some(cfg.initial_bits));
        }
        sink.record(&TelemetryEvent::RunStarted {
            run: "adq.baseline".to_string(),
            config: serde_json::to_value(cfg),
            seed: cfg.seed,
        });
        sink.record(&TelemetryEvent::WorkerPoolConfigured {
            threads: adq_tensor::dispatch::current_num_threads(),
            microbatch: self.microbatch,
        });
        let metrics = adq_telemetry::metrics::global();
        let train_batches = metrics.counter("core.train_batches");
        let run_epoch = metrics.gauge("run.epoch");
        let run_loss = metrics.gauge("run.loss");
        let run_accuracy = metrics.gauge("run.accuracy");
        let run_total_ad = metrics.gauge("run.total_ad");
        let mut optimizer = Adam::new(cfg.lr);
        let mut rng = adq_tensor::init::rng(cfg.seed);
        let mut histories: Vec<DensityHistory> =
            (0..count).map(|_| DensityHistory::new()).collect();
        let mut accuracy_history = Vec::new();
        let mut last_train_acc = 0.0;
        let mut baseline_span = phase_span("adq.iteration", 1);
        baseline_span.attr("baseline", 1u64);
        let mut train_span = phase_span("adq.phase.train", 1);
        for epoch in 1..=epochs {
            let mut epoch_span = phase_span("adq.epoch", 1);
            epoch_span.attr("epoch", epoch);
            model.reset_densities();
            let stats = match self.microbatch {
                Some(microbatch) => train_epoch_parallel_observed(
                    model,
                    train,
                    &mut optimizer,
                    cfg.batch_size,
                    microbatch,
                    &mut rng,
                    &mut |_| train_batches.inc(),
                ),
                None => train_epoch_observed(
                    model,
                    train,
                    &mut optimizer,
                    cfg.batch_size,
                    &mut rng,
                    &mut |_| train_batches.inc(),
                ),
            };
            last_train_acc = stats.accuracy;
            accuracy_history.push(stats.accuracy);
            for (idx, history) in histories.iter_mut().enumerate() {
                history.record(model.density_of(idx).clamp(0.0, 1.0));
            }
            sink.record(&TelemetryEvent::EpochCompleted {
                iteration: 1,
                epoch,
                loss: stats.loss,
                accuracy: stats.accuracy,
            });
            run_epoch.set(epoch as f64);
            run_loss.set(stats.loss);
            run_accuracy.set(stats.accuracy);
            let epoch_densities: Vec<f64> = histories
                .iter()
                .map(|h| h.latest().unwrap_or(0.0))
                .collect();
            run_total_ad.set(mean(&epoch_densities));
            sink.record(&TelemetryEvent::DensityMeasured {
                iteration: 1,
                epoch,
                total_ad: mean(&epoch_densities),
                densities: epoch_densities,
            });
        }
        train_span.attr("epochs", epochs);
        drop(train_span);
        let densities: Vec<f64> = histories
            .iter()
            .map(|h| h.latest().unwrap_or(0.0))
            .collect();
        let test_stats = {
            let _evaluate_span = phase_span("adq.phase.evaluate", 1);
            evaluate_observed(model, test, cfg.batch_size, &mut |_| {})
        };
        let ad_history: Vec<Vec<f64>> = (0..epochs)
            .map(|e| histories.iter().map(|h| h.samples()[e]).collect())
            .collect();
        let record = IterationRecord {
            iteration: 1,
            bits: (0..count).map(|i| model.bits_of(i)).collect(),
            channels: (0..count).map(|i| model.out_channels_of(i)).collect(),
            epochs_trained: epochs,
            total_ad: mean(&densities),
            densities,
            test_accuracy: test_stats.accuracy,
            train_accuracy: last_train_acc,
            ad_history,
            accuracy_history,
            mac_reduction: 1.0,
        };
        sink.record(&TelemetryEvent::IterationCompleted {
            iteration: 1,
            epochs_trained: epochs,
            test_accuracy: record.test_accuracy,
            record: serde_json::to_value(&record),
        });
        sink.record(&TelemetryEvent::RunCompleted {
            iterations: 1,
            training_complexity: training_complexity(
                &[IterationCost::new(1.0, epochs)],
                cfg.baseline_epochs,
            ),
            final_accuracy: record.test_accuracy,
        });
        drop(baseline_span);
        span::drain_into(sink);
        sink.flush();
        record
    }
}

/// An [`AdQuantizer`] bound to a telemetry sink — the builder-style way to
/// attach observation without changing `run`'s signature.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use adq_core::{AdqConfig, AdQuantizer};
/// use adq_datasets::SyntheticSpec;
/// use adq_nn::Vgg;
/// use adq_telemetry::MemorySink;
///
/// let sink = Arc::new(MemorySink::new());
/// let (train, test) = SyntheticSpec::cifar10_like().generate();
/// let mut model = Vgg::small(3, 16, 10, 1);
/// let outcome = AdQuantizer::new(AdqConfig::fast())
///     .with_telemetry(sink.clone())
///     .run(&mut model, &train, &test);
/// assert!(!sink.events().is_empty());
/// ```
pub struct InstrumentedAdQuantizer {
    quantizer: AdQuantizer,
    sink: Arc<dyn TelemetrySink>,
}

impl InstrumentedAdQuantizer {
    /// The underlying configuration.
    pub fn config(&self) -> &AdqConfig {
        self.quantizer.config()
    }

    /// [`AdQuantizer::run`], emitting to the attached sink.
    pub fn run(&self, model: &mut dyn QuantModel, train: &Dataset, test: &Dataset) -> AdqOutcome {
        self.quantizer
            .run_with_sink(model, train, test, self.sink.as_ref())
    }

    /// [`AdQuantizer::run_baseline`], emitting to the attached sink.
    pub fn run_baseline(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        epochs: usize,
    ) -> IterationRecord {
        self.quantizer
            .run_baseline_with_sink(model, train, test, epochs, self.sink.as_ref())
    }

    /// [`AdQuantizer::run_checkpointed`], emitting to the attached sink.
    ///
    /// # Errors
    ///
    /// See [`AdQuantizer::run_checkpointed`].
    pub fn run_checkpointed(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        manager: &CheckpointManager,
    ) -> Result<AdqOutcome, CheckpointError> {
        self.quantizer
            .run_checkpointed(model, train, test, self.sink.as_ref(), manager)
    }

    /// [`AdQuantizer::resume_from`], emitting to the attached sink.
    ///
    /// # Errors
    ///
    /// See [`AdQuantizer::resume_from`].
    pub fn resume_from(
        &self,
        model: &mut dyn QuantModel,
        train: &Dataset,
        test: &Dataset,
        checkpoint: RunCheckpoint,
        manager: Option<&CheckpointManager>,
    ) -> Result<AdqOutcome, CheckpointError> {
        self.quantizer
            .resume_from(model, train, test, self.sink.as_ref(), checkpoint, manager)
    }
}

/// Opens a controller phase span carrying the iteration attribute, or a
/// no-op guard when tracing is off (the attribute vector is only built
/// when it will be recorded).
fn phase_span(name: &'static str, iteration: usize) -> SpanGuard {
    if span::enabled() {
        span::span_with(
            name,
            vec![("iteration", span::AttrValue::U64(iteration as u64))],
        )
    } else {
        SpanGuard::disabled()
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adq_datasets::SyntheticSpec;
    use adq_nn::{ResNet, Vgg};

    fn tiny_task() -> (Dataset, Dataset) {
        SyntheticSpec::cifar10_like()
            .with_classes(4)
            .with_resolution(8)
            .with_samples(8, 4)
            .generate()
    }

    #[test]
    fn run_records_at_least_one_iteration() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 1);
        let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
        assert!(!outcome.iterations.is_empty());
        assert!(outcome.total_epochs() > 0);
    }

    #[test]
    fn first_and_last_layers_stay_full_precision() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 2);
        let cfg = AdqConfig::fast();
        let outcome = AdQuantizer::new(cfg).run(&mut model, &train, &test);
        for record in &outcome.iterations {
            assert_eq!(record.bits[0], Some(cfg.full_precision_bits));
            assert_eq!(
                record.bits[record.bits.len() - 1],
                Some(cfg.full_precision_bits)
            );
        }
    }

    #[test]
    fn interior_bits_never_increase_across_iterations() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 3);
        let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
        for pair in outcome.iterations.windows(2) {
            for idx in 1..pair[0].bits.len() - 1 {
                assert!(
                    pair[1].bits[idx] <= pair[0].bits[idx],
                    "layer {idx} grew: {:?} -> {:?}",
                    pair[0].bits[idx],
                    pair[1].bits[idx]
                );
            }
        }
    }

    #[test]
    fn first_iteration_reduction_is_one() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 4);
        let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
        assert!((outcome.iterations[0].mac_reduction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn later_iterations_are_cheaper() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 5);
        let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
        if outcome.iterations.len() >= 2 {
            assert!(outcome.iterations[1].mac_reduction > 1.0);
        }
    }

    #[test]
    fn densities_are_probabilities() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 6);
        let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
        for record in &outcome.iterations {
            assert!(record.densities.iter().all(|d| (0.0..=1.0).contains(d)));
            assert!((0.0..=1.0).contains(&record.total_ad));
        }
    }

    #[test]
    fn ad_history_shape_matches_epochs() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 7);
        let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
        for record in &outcome.iterations {
            assert_eq!(record.ad_history.len(), record.epochs_trained);
            for row in &record.ad_history {
                assert_eq!(row.len(), record.bits.len());
            }
        }
    }

    #[test]
    fn pruning_shrinks_channels() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 8);
        let before: Vec<usize> = (0..model.layer_count())
            .map(|i| model.out_channels_of(i))
            .collect();
        let cfg = AdqConfig::fast().with_pruning();
        let outcome = AdQuantizer::new(cfg).run(&mut model, &train, &test);
        let last = outcome.final_record();
        // densities are well below 1 early on, so pruning must have bitten
        // somewhere unless the run converged after one iteration
        if outcome.iterations.len() >= 2 {
            let shrunk = last
                .channels
                .iter()
                .zip(&before)
                .any(|(after, before)| after < before);
            assert!(shrunk, "{:?} vs {before:?}", last.channels);
        }
    }

    #[test]
    fn works_on_resnet_with_junctions() {
        let (train, test) = tiny_task();
        let mut model = ResNet::tiny(3, 8, 4, 9);
        let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
        assert!(!outcome.iterations.is_empty());
        // junction bits must never exceed initial precision
        for record in &outcome.iterations {
            for bits in record.bits.iter().flatten() {
                assert!(*bits <= BitWidth::SIXTEEN);
            }
        }
    }

    #[test]
    fn training_complexity_positive_and_finite() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 10);
        let outcome = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
        assert!(outcome.training_complexity > 0.0);
        assert!(outcome.training_complexity.is_finite());
    }

    #[test]
    fn baseline_run_keeps_uniform_bits() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 11);
        let cfg = AdqConfig::fast();
        let record = AdQuantizer::new(cfg).run_baseline(&mut model, &train, &test, 3);
        assert_eq!(record.epochs_trained, 3);
        assert!(record.bits.iter().all(|b| *b == Some(cfg.initial_bits)));
        assert!((record.mac_reduction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_layer_removal_shrinks_model() {
        use adq_nn::VggItem::{Conv, Pool};
        let (train, test) = tiny_task();
        // interior square blocks (8->8) are removable
        let mut model = adq_nn::Vgg::from_config(
            3,
            8,
            4,
            &[Conv(8), Conv(8), Conv(8), Pool, Conv(16)],
            true,
            30,
        );
        let before = model.layer_count();
        let mut cfg = AdqConfig::fast();
        cfg.max_iterations = 4;
        // force the trigger: everything counts as dead once bits collapse
        cfg.remove_dead_layers = Some(DeadLayerPolicy {
            at_most_bits: 16,
            ad_below: 1.0,
        });
        let outcome = AdQuantizer::new(cfg).run(&mut model, &train, &test);
        assert!(
            model.layer_count() < before,
            "no layer was removed ({before} -> {})",
            model.layer_count()
        );
        // records reflect the shrinking architecture
        let first = outcome.iterations.first().expect("ran").bits.len();
        let last = outcome.final_record().bits.len();
        assert!(last < first);
        // and the model still runs
        let y = model.forward(&test.images, false);
        assert_eq!(y.dims()[1], 4);
    }

    #[test]
    fn default_policy_spares_healthy_layers() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 31);
        let before = model.layer_count();
        let cfg = AdqConfig::fast().with_layer_removal();
        AdQuantizer::new(cfg).run(&mut model, &train, &test);
        // healthy ADs (~0.5) never cross the 0.05 default threshold
        assert_eq!(model.layer_count(), before);
    }

    #[test]
    fn saturation_can_end_iteration_early() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 12);
        let mut cfg = AdqConfig::fast();
        cfg.max_epochs_per_iteration = 50;
        cfg.min_epochs_per_iteration = 2;
        cfg.saturation = SaturationDetector::new(2, 0.5); // very lax
        let outcome = AdQuantizer::new(cfg).run(&mut model, &train, &test);
        assert!(outcome.iterations[0].epochs_trained < 50);
    }
}
