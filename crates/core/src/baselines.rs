//! Comparison baselines from the paper's §I framing.
//!
//! The paper positions in-training AD quantization against two families:
//!
//! 1. **Homogeneous-precision networks trained from scratch** — same
//!    bit-width everywhere ("Binarized or homogeneous precision network
//!    implementations … generally suffer from accuracy loss as compared to
//!    mixed-precision models").
//! 2. **Train → quantize → retrain** — the conventional pipeline that
//!    needs a fully trained full-precision model first ("the prerequisite
//!    of a large fully trained network as a starting point is a significant
//!    overhead").
//!
//! Both are implemented here with the same instrumentation as the main
//! controller so the `baseline_comparison` bench can line all three up on
//! accuracy, epochs and training complexity.

use adq_energy::EnergyModel;
use adq_nn::train::{evaluate, train_epoch, Dataset};
use adq_nn::{Adam, QuantModel};
use adq_quant::BitWidth;
use serde::{Deserialize, Serialize};

use crate::builders::network_spec_from_stats;
use crate::complexity::{training_complexity, IterationCost};

/// Result of a homogeneous-precision run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomogeneousRecord {
    /// The uniform bit-width trained at.
    pub bits: BitWidth,
    /// Epochs trained.
    pub epochs: usize,
    /// Final test accuracy.
    pub test_accuracy: f64,
    /// Final mean Activation Density.
    pub total_ad: f64,
    /// eqn-4 complexity of the schedule vs `baseline_epochs` at 16-bit.
    pub training_complexity: f64,
}

/// Trains `model` from scratch at a single uniform precision (quantizing
/// every layer, including the first and last, as homogeneous baselines do).
///
/// # Example
///
/// ```no_run
/// use adq_core::baselines::train_homogeneous;
/// use adq_datasets::SyntheticSpec;
/// use adq_nn::Vgg;
/// use adq_quant::BitWidth;
///
/// # fn main() -> Result<(), adq_quant::QuantError> {
/// let (train, test) = SyntheticSpec::cifar10_like().generate();
/// let mut model = Vgg::small(3, 16, 10, 1);
/// let record = train_homogeneous(
///     &mut model, &train, &test, BitWidth::new(4)?, 10, 32, 2e-3, 0, 20,
/// );
/// println!("4-bit from scratch: {:.1}%", 100.0 * record.test_accuracy);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::too_many_arguments)]
pub fn train_homogeneous(
    model: &mut dyn QuantModel,
    train: &Dataset,
    test: &Dataset,
    bits: BitWidth,
    epochs: usize,
    batch_size: usize,
    lr: f32,
    seed: u64,
    baseline_epochs: usize,
) -> HomogeneousRecord {
    for idx in 0..model.layer_count() {
        model.set_bits_of(idx, Some(bits));
    }
    let mut optimizer = Adam::new(lr);
    let mut rng = adq_tensor::init::rng(seed);
    for _ in 0..epochs {
        model.reset_densities();
        train_epoch(model, train, &mut optimizer, batch_size, &mut rng);
    }
    let stats = evaluate(model, test, batch_size);
    let densities: Vec<f64> = (0..model.layer_count())
        .map(|i| model.density_of(i))
        .collect();
    let total_ad = densities.iter().sum::<f64>() / densities.len().max(1) as f64;

    // energy-based step-cost reduction of the k-bit model vs the 16-bit one
    let energy_model = EnergyModel::paper_45nm();
    let spec = network_spec_from_stats("homogeneous", &model.layer_stats(), bits);
    let reduction = spec
        .with_uniform_bits(BitWidth::SIXTEEN)
        .energy_pj(&energy_model)
        / spec.energy_pj(&energy_model).max(f64::MIN_POSITIVE);
    let complexity = training_complexity(
        &[IterationCost::new(reduction.max(1e-9), epochs)],
        baseline_epochs,
    );
    HomogeneousRecord {
        bits,
        epochs,
        test_accuracy: stats.accuracy,
        total_ad,
        training_complexity: complexity,
    }
}

/// Configuration of the conventional train → quantize → retrain pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PtqConfig {
    /// Epochs of full-precision pre-training (the expensive prerequisite).
    pub pretrain_epochs: usize,
    /// Epochs of retraining after one-shot quantization.
    pub retrain_epochs: usize,
    /// The precision the model pre-trains at.
    pub initial_bits: BitWidth,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// eqn-4 normalisation.
    pub baseline_epochs: usize,
}

impl Default for PtqConfig {
    fn default() -> Self {
        Self {
            pretrain_epochs: 10,
            retrain_epochs: 5,
            initial_bits: BitWidth::SIXTEEN,
            batch_size: 32,
            lr: 2e-3,
            seed: 0,
            baseline_epochs: 20,
        }
    }
}

/// Result of a train → quantize → retrain run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PtqRecord {
    /// Test accuracy of the fully trained full-precision model.
    pub pretrained_accuracy: f64,
    /// Test accuracy immediately after one-shot quantization (the "drop"
    /// conventional pipelines retrain to recover).
    pub quantized_accuracy: f64,
    /// Test accuracy after retraining.
    pub final_accuracy: f64,
    /// Per-layer bit-widths chosen by the one-shot heuristic.
    pub bits: Vec<Option<BitWidth>>,
    /// eqn-4 training complexity of the whole pipeline.
    pub training_complexity: f64,
    /// Total epochs spent (pretrain + retrain).
    pub total_epochs: usize,
}

/// Runs the conventional pipeline the paper contrasts with: fully train at
/// `initial_bits`, assign mixed precision *once* with the AD heuristic
/// (eqn 3, same rule as Algorithm 1 but applied post-hoc), then retrain.
///
/// First and last layers stay at the initial precision, as in Algorithm 1.
// indexed loop: `idx` addresses densities and the model interface together
#[allow(clippy::needless_range_loop)]
pub fn train_quantize_retrain(
    model: &mut dyn QuantModel,
    train: &Dataset,
    test: &Dataset,
    config: &PtqConfig,
) -> PtqRecord {
    let count = model.layer_count();
    for idx in 0..count {
        model.set_bits_of(idx, Some(config.initial_bits));
    }
    let mut optimizer = Adam::new(config.lr);
    let mut rng = adq_tensor::init::rng(config.seed);
    // 1. expensive full-precision pre-training
    for _ in 0..config.pretrain_epochs {
        model.reset_densities();
        train_epoch(model, train, &mut optimizer, config.batch_size, &mut rng);
    }
    let pretrained_accuracy = evaluate(model, test, config.batch_size).accuracy;
    let densities: Vec<f64> = (0..count).map(|i| model.density_of(i)).collect();

    // 2. one-shot post-training quantization with the eqn-3 heuristic
    for idx in 1..count.saturating_sub(1) {
        let current = model.bits_of(idx).unwrap_or(config.initial_bits);
        model.set_bits_of(idx, Some(current.scaled_by_density(densities[idx])));
    }
    let quantized_accuracy = evaluate(model, test, config.batch_size).accuracy;

    // 3. retraining to recover the drop
    for _ in 0..config.retrain_epochs {
        model.reset_densities();
        train_epoch(model, train, &mut optimizer, config.batch_size, &mut rng);
    }
    let final_accuracy = evaluate(model, test, config.batch_size).accuracy;

    let energy_model = EnergyModel::paper_45nm();
    let spec = network_spec_from_stats("ptq", &model.layer_stats(), config.initial_bits);
    let reduction = spec
        .with_uniform_bits(config.initial_bits)
        .energy_pj(&energy_model)
        / spec.energy_pj(&energy_model).max(f64::MIN_POSITIVE);
    let complexity = training_complexity(
        &[
            IterationCost::new(1.0, config.pretrain_epochs),
            IterationCost::new(reduction.max(1e-9), config.retrain_epochs),
        ],
        config.baseline_epochs,
    );
    PtqRecord {
        pretrained_accuracy,
        quantized_accuracy,
        final_accuracy,
        bits: (0..count).map(|i| model.bits_of(i)).collect(),
        training_complexity: complexity,
        total_epochs: config.pretrain_epochs + config.retrain_epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adq_datasets::SyntheticSpec;
    use adq_nn::Vgg;

    fn tiny_task() -> (Dataset, Dataset) {
        SyntheticSpec::cifar10_like()
            .with_classes(4)
            .with_resolution(8)
            .with_samples(10, 4)
            .generate()
    }

    #[test]
    fn homogeneous_sets_every_layer() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 1);
        let bits = BitWidth::new(4).unwrap();
        let record = train_homogeneous(&mut model, &train, &test, bits, 2, 8, 2e-3, 0, 4);
        assert_eq!(record.bits, bits);
        for i in 0..model.layer_count() {
            assert_eq!(model.bits_of(i), Some(bits));
        }
        assert!((0.0..=1.0).contains(&record.test_accuracy));
    }

    #[test]
    fn homogeneous_low_precision_is_cheaper() {
        let (train, test) = tiny_task();
        let mut m4 = Vgg::tiny(3, 8, 4, 2);
        let r4 = train_homogeneous(
            &mut m4,
            &train,
            &test,
            BitWidth::new(4).unwrap(),
            2,
            8,
            2e-3,
            0,
            4,
        );
        let mut m16 = Vgg::tiny(3, 8, 4, 2);
        let r16 = train_homogeneous(&mut m16, &train, &test, BitWidth::SIXTEEN, 2, 8, 2e-3, 0, 4);
        assert!(r4.training_complexity < r16.training_complexity);
    }

    #[test]
    fn ptq_pipeline_runs_all_three_phases() {
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 3);
        let config = PtqConfig {
            pretrain_epochs: 3,
            retrain_epochs: 2,
            batch_size: 8,
            baseline_epochs: 5,
            ..PtqConfig::default()
        };
        let record = train_quantize_retrain(&mut model, &train, &test, &config);
        assert_eq!(record.total_epochs, 5);
        // ends pinned at initial precision, interior quantized by eqn 3
        assert_eq!(record.bits[0], Some(BitWidth::SIXTEEN));
        let interior_quantized = record.bits[1..record.bits.len() - 1]
            .iter()
            .flatten()
            .any(|b| *b < BitWidth::SIXTEEN);
        assert!(interior_quantized, "{:?}", record.bits);
    }

    #[test]
    fn ptq_complexity_exceeds_pretrain_fraction() {
        // the pipeline can never be cheaper than its full-precision phase
        let (train, test) = tiny_task();
        let mut model = Vgg::tiny(3, 8, 4, 4);
        let config = PtqConfig {
            pretrain_epochs: 4,
            retrain_epochs: 2,
            batch_size: 8,
            baseline_epochs: 6,
            ..PtqConfig::default()
        };
        let record = train_quantize_retrain(&mut model, &train, &test, &config);
        assert!(record.training_complexity >= 4.0 / 6.0);
    }
}
