//! Glue between live [`adq_nn::QuantModel`]s and the energy models.
//!
//! The analytical ([`adq_energy`]) and PIM ([`adq_pim`]) models consume
//! architecture descriptions, not networks; these builders derive those
//! descriptions from a model's [`LayerStat`] snapshot so dynamically trained
//! mixed-precision models can be costed with the same code paths as the
//! paper presets.

use adq_energy::{LayerSpec, NetworkSpec};
use adq_nn::{LayerKind, LayerStat};
use adq_pim::LayerMapping;
use adq_quant::BitWidth;

/// Builds an analytical-energy network spec from model layer snapshots.
///
/// Layers without an explicit bit-width (full precision) are costed at
/// `default_bits` — the paper costs its FP baselines at 16-bit (32-bit for
/// the TinyImagenet baseline). Junction pseudo-layers contribute only when
/// they carry a projection convolution.
pub fn network_spec_from_stats(
    name: impl Into<String>,
    stats: &[LayerStat],
    default_bits: BitWidth,
) -> NetworkSpec {
    let mut layers = Vec::new();
    for stat in stats {
        let bits = stat.bits.unwrap_or(default_bits);
        match stat.kind {
            LayerKind::Conv => {
                let geom = stat.geom.expect("conv layers always carry geometry");
                layers.push(LayerSpec::conv(geom, stat.input_hw, bits));
            }
            LayerKind::Junction => {
                if let Some(geom) = stat.geom {
                    layers.push(LayerSpec::conv(geom, stat.input_hw, bits));
                }
            }
            LayerKind::Linear => {
                layers.push(LayerSpec::fc(stat.in_features, stat.out_channels, bits));
            }
        }
    }
    NetworkSpec::new(name, layers)
}

/// Maps an analytical network spec onto the PIM accelerator: one
/// [`LayerMapping`] per layer, with bit-widths legalised to {2, 4, 8, 16}.
pub fn pim_mappings_from_spec(spec: &NetworkSpec) -> Vec<LayerMapping> {
    spec.layers()
        .iter()
        .enumerate()
        .map(|(i, layer)| LayerMapping::new(i, layer.mac_count(), layer.bits()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adq_nn::{QuantModel, ResNet, Vgg};
    use adq_quant::HwPrecision;

    fn bw(bits: u32) -> BitWidth {
        BitWidth::new(bits).unwrap()
    }

    #[test]
    fn vgg_spec_has_layer_per_stat() {
        let net = Vgg::tiny(3, 8, 4, 1);
        let spec = network_spec_from_stats("vgg", &net.layer_stats(), bw(16));
        // 3 convs + 1 fc
        assert_eq!(spec.layers().len(), 4);
        assert!(spec.mac_count() > 0);
    }

    #[test]
    fn resnet_spec_counts_projections_only() {
        let net = ResNet::tiny(3, 8, 4, 2);
        let spec = network_spec_from_stats("resnet", &net.layer_stats(), bw(16));
        // stem + 2 blocks * 2 convs + 1 projection (block 1) + fc = 7
        assert_eq!(spec.layers().len(), 7);
    }

    #[test]
    fn explicit_bits_override_default() {
        let mut net = Vgg::tiny(3, 8, 4, 3);
        net.set_bits_of(1, Some(bw(4)));
        let spec = network_spec_from_stats("vgg", &net.layer_stats(), bw(16));
        assert_eq!(spec.layers()[1].bits(), bw(4));
        assert_eq!(spec.layers()[0].bits(), bw(16));
    }

    #[test]
    fn pim_mappings_match_spec() {
        let net = Vgg::tiny(3, 8, 4, 4);
        let spec = network_spec_from_stats("vgg", &net.layer_stats(), bw(16));
        let maps = pim_mappings_from_spec(&spec);
        assert_eq!(maps.len(), spec.layers().len());
        assert_eq!(maps.iter().map(|m| m.macs).sum::<u64>(), spec.mac_count());
        assert!(maps.iter().all(|m| m.precision == HwPrecision::B16));
    }

    #[test]
    fn pim_mapping_legalizes_odd_bits() {
        let mut net = Vgg::tiny(3, 8, 4, 5);
        net.set_bits_of(0, Some(bw(3)));
        let spec = network_spec_from_stats("vgg", &net.layer_stats(), bw(16));
        let maps = pim_mappings_from_spec(&spec);
        assert_eq!(maps[0].precision, HwPrecision::B4);
    }
}
