use serde::{Deserialize, Serialize};

/// Cost of one quantization iteration for the training-complexity metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationCost {
    /// `MAC reduction_i`: how many times cheaper one training step of this
    /// iteration's model is than a baseline full-precision step
    /// (1.0 for the initial-precision iteration).
    pub mac_reduction: f64,
    /// Epochs trained in this iteration.
    pub epochs: usize,
}

impl IterationCost {
    /// Creates an iteration cost.
    ///
    /// # Panics
    ///
    /// Panics if `mac_reduction` is not positive and finite.
    pub fn new(mac_reduction: f64, epochs: usize) -> Self {
        assert!(
            mac_reduction > 0.0 && mac_reduction.is_finite(),
            "MAC reduction must be positive, got {mac_reduction}"
        );
        Self {
            mac_reduction,
            epochs,
        }
    }
}

/// Training complexity (eqn 4), normalised against a baseline schedule:
///
/// ```text
/// complexity = Σ_i (MAC reduction_i)⁻¹ · #epochs_i  /  baseline_epochs
/// ```
///
/// The baseline trains the full-precision model (`MAC reduction = 1`) for
/// `baseline_epochs`, so its own complexity is exactly 1.0. Values below 1
/// mean the in-training quantization schedule was cheaper than baseline
/// training — the paper reports ≈ 0.5 for VGG19/CIFAR-10.
///
/// # Panics
///
/// Panics if `baseline_epochs` is zero.
///
/// # Example
///
/// ```
/// use adq_core::{training_complexity, IterationCost};
///
/// // paper Table II (a): 100 epochs at 1x, then 70 epochs at 4.16x cheaper,
/// // against a 210-epoch baseline schedule
/// let c = training_complexity(
///     &[IterationCost::new(1.0, 100), IterationCost::new(4.16, 70)],
///     210,
/// );
/// assert!((c - 0.556).abs() < 0.01);
/// ```
pub fn training_complexity(iterations: &[IterationCost], baseline_epochs: usize) -> f64 {
    assert!(baseline_epochs > 0, "baseline epochs must be positive");
    let cost: f64 = iterations
        .iter()
        .map(|it| it.epochs as f64 / it.mac_reduction)
        .sum();
    cost / baseline_epochs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_complexity_is_one() {
        let c = training_complexity(&[IterationCost::new(1.0, 210)], 210);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cheaper_iterations_reduce_complexity() {
        let c = training_complexity(
            &[IterationCost::new(1.0, 100), IterationCost::new(4.0, 100)],
            200,
        );
        assert!((c - 0.625).abs() < 1e-12);
    }

    #[test]
    fn paper_vgg19_schedule_is_about_half() {
        // Table II (a): 100 @ 1x + 70 @ ~4.16x vs 210-epoch baseline -> ~0.52-0.56
        let c = training_complexity(
            &[IterationCost::new(1.0, 100), IterationCost::new(4.16, 70)],
            210,
        );
        assert!((0.5..0.6).contains(&c), "complexity {c}");
    }

    #[test]
    fn zero_epochs_iteration_is_free() {
        let c = training_complexity(
            &[IterationCost::new(1.0, 50), IterationCost::new(4.0, 0)],
            100,
        );
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_costs_nothing() {
        assert_eq!(training_complexity(&[], 100), 0.0);
    }

    #[test]
    #[should_panic]
    fn non_positive_reduction_panics() {
        IterationCost::new(0.0, 10);
    }

    #[test]
    #[should_panic]
    fn zero_baseline_panics() {
        training_complexity(&[IterationCost::new(1.0, 1)], 0);
    }

    #[test]
    fn complexity_monotone_in_reduction() {
        let lo = training_complexity(&[IterationCost::new(2.0, 100)], 100);
        let hi = training_complexity(&[IterationCost::new(4.0, 100)], 100);
        assert!(hi < lo);
    }
}
