//! End-to-end determinism contract of data-parallel training: a full
//! Algorithm-1 run produces bit-identical outcomes — and bit-identical
//! checkpoint files — whatever the worker-thread count, and resume
//! refuses to silently change the microbatch setting.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use adq_core::checkpoint::{CheckpointError, CheckpointManager};
use adq_core::{AdQuantizer, AdqConfig, AdqOutcome};
use adq_datasets::SyntheticSpec;
use adq_nn::train::Dataset;
use adq_nn::Vgg;
use adq_telemetry::{MemorySink, NullSink, TelemetryEvent};

/// `rayon::set_thread_override` is process-global, so tests that flip it
/// must not interleave.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

const MICROBATCH: usize = 3;

fn tiny_task() -> (Dataset, Dataset) {
    SyntheticSpec::cifar10_like()
        .with_classes(4)
        .with_resolution(8)
        .with_samples(8, 4)
        .generate()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adq-parallel-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One checkpointed parallel run under a fixed worker count; returns the
/// outcome plus the raw bytes of every checkpoint file written.
fn run_parallel(threads: usize, tag: &str) -> (AdqOutcome, Vec<(String, Vec<u8>)>) {
    let (train, test) = tiny_task();
    let mut model = Vgg::tiny(3, 8, 4, 11);
    let dir = scratch_dir(tag);
    let manager = CheckpointManager::new(&dir).expect("manager");

    rayon::set_thread_override(Some(threads));
    let outcome = AdQuantizer::new(AdqConfig::fast())
        .with_parallelism(MICROBATCH)
        .run_checkpointed(&mut model, &train, &test, &NullSink, &manager)
        .expect("checkpointed run");
    rayon::set_thread_override(None);

    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .map(|e| {
            let path = e.expect("dir entry").path();
            let name = path
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            (name, fs::read(&path).expect("read checkpoint"))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let _ = fs::remove_dir_all(&dir);
    (outcome, files)
}

#[test]
fn outcome_and_checkpoints_are_bit_identical_across_thread_counts() {
    let _guard = THREAD_OVERRIDE.lock().expect("override guard");

    let (serial, serial_files) = run_parallel(1, "t1");
    let (wide, wide_files) = run_parallel(4, "t4");

    assert_eq!(
        serde_json::to_string(&serial).expect("serialise"),
        serde_json::to_string(&wide).expect("serialise"),
        "AdqOutcome differs between 1 and 4 worker threads"
    );

    assert!(
        !serial_files.is_empty(),
        "run wrote no checkpoints; the byte comparison below would be vacuous"
    );
    assert_eq!(
        serial_files.len(),
        wide_files.len(),
        "runs wrote different numbers of checkpoint files"
    );
    for ((name_a, bytes_a), (name_b, bytes_b)) in serial_files.iter().zip(&wide_files) {
        assert_eq!(name_a, name_b, "checkpoint file names diverged");
        assert_eq!(
            bytes_a, bytes_b,
            "checkpoint {name_a} is not byte-identical across thread counts"
        );
    }
}

#[test]
fn resume_refuses_a_different_microbatch_setting() {
    let _guard = THREAD_OVERRIDE.lock().expect("override guard");

    let (train, test) = tiny_task();
    let dir = scratch_dir("mismatch");
    let manager = CheckpointManager::new(&dir).expect("manager");

    let mut model = Vgg::tiny(3, 8, 4, 12);
    AdQuantizer::new(AdqConfig::fast())
        .with_parallelism(MICROBATCH)
        .run_checkpointed(&mut model, &train, &test, &NullSink, &manager)
        .expect("checkpointed run");
    let checkpoint = manager
        .load_latest()
        .expect("scan")
        .expect("run saved at least one checkpoint");

    // same config, but serial training: the outcome would differ, so
    // resume must refuse rather than splice the histories together
    let mut fresh = Vgg::tiny(3, 8, 4, 12);
    let err = AdQuantizer::new(AdqConfig::fast())
        .resume_from(&mut fresh, &train, &test, &NullSink, checkpoint, None)
        .expect_err("microbatch mismatch must be rejected");
    assert!(
        matches!(err, CheckpointError::ConfigMismatch(ref msg) if msg.contains("microbatch")),
        "unexpected error: {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn parallel_run_reports_its_worker_pool() {
    let _guard = THREAD_OVERRIDE.lock().expect("override guard");

    let (train, test) = tiny_task();
    let mut model = Vgg::tiny(3, 8, 4, 13);
    let sink = Arc::new(MemorySink::new());
    AdQuantizer::new(AdqConfig::fast())
        .with_parallelism(MICROBATCH)
        .with_telemetry(sink.clone())
        .run(&mut model, &train, &test);

    let pools: Vec<_> = sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            TelemetryEvent::WorkerPoolConfigured {
                threads,
                microbatch,
            } => Some((threads, microbatch)),
            _ => None,
        })
        .collect();
    assert_eq!(pools.len(), 1, "expected exactly one pool event");
    assert_eq!(pools[0].1, Some(MICROBATCH));
    assert!(pools[0].0 >= 1);
}
