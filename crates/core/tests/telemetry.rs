//! Integration tests for the telemetry event stream emitted by the
//! Algorithm-1 controller: ordering, per-iteration coverage, the
//! observation-only contract, and JSONL persistence.

use std::sync::Arc;

use adq_core::{AdQuantizer, AdqConfig, AdqOutcome};
use adq_datasets::SyntheticSpec;
use adq_nn::train::Dataset;
use adq_nn::Vgg;
use adq_telemetry::{JsonlSink, MemorySink, TelemetryEvent};

fn tiny_task() -> (Dataset, Dataset) {
    SyntheticSpec::cifar10_like()
        .with_classes(4)
        .with_resolution(8)
        .with_samples(8, 4)
        .generate()
}

fn run_with_memory_sink(seed: u64) -> (AdqOutcome, Vec<TelemetryEvent>) {
    let (train, test) = tiny_task();
    let mut model = Vgg::tiny(3, 8, 4, seed);
    let sink = Arc::new(MemorySink::new());
    let outcome = AdQuantizer::new(AdqConfig::fast())
        .with_telemetry(sink.clone())
        .run(&mut model, &train, &test);
    (outcome, sink.take())
}

#[test]
fn stream_is_ordered_run_to_completion() {
    let (outcome, events) = run_with_memory_sink(1);
    assert_eq!(events.first().map(TelemetryEvent::kind), Some("RunStarted"));
    assert_eq!(
        events.last().map(TelemetryEvent::kind),
        Some("RunCompleted")
    );

    // exactly one IterationCompleted per controller iteration, in order
    let completed: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::IterationCompleted { iteration, .. } => Some(*iteration),
            _ => None,
        })
        .collect();
    let expected: Vec<usize> = outcome.iterations.iter().map(|r| r.iteration).collect();
    assert_eq!(completed, expected);

    // every iteration emits one EpochCompleted and one DensityMeasured per
    // trained epoch
    for record in &outcome.iterations {
        let epochs = events
            .iter()
            .filter(|e| {
                matches!(e, TelemetryEvent::EpochCompleted { iteration, .. }
                    if *iteration == record.iteration)
            })
            .count();
        assert_eq!(epochs, record.epochs_trained, "iter {}", record.iteration);
        let densities = events
            .iter()
            .filter(|e| {
                matches!(e, TelemetryEvent::DensityMeasured { iteration, .. }
                    if *iteration == record.iteration)
            })
            .count();
        assert_eq!(densities, record.epochs_trained);
    }
}

#[test]
fn bit_widths_are_monotonically_non_increasing() {
    let (_, events) = run_with_memory_sink(2);
    let mut assigned = 0usize;
    let mut last_bits: std::collections::BTreeMap<usize, u32> = Default::default();
    for event in &events {
        if let TelemetryEvent::BitWidthAssigned {
            layer,
            old_bits,
            new_bits,
            ..
        } = event
        {
            assigned += 1;
            assert!(new_bits <= old_bits, "layer {layer} grew");
            if let Some(prev) = last_bits.get(layer) {
                assert!(old_bits <= prev, "layer {layer} regrew between events");
            }
            last_bits.insert(*layer, *new_bits);
        }
    }
    assert!(assigned > 0, "run never re-assigned a bit-width");
}

#[test]
fn null_sink_and_memory_sink_outcomes_are_byte_identical() {
    let (train, test) = tiny_task();
    let config = AdqConfig::fast();

    let mut quiet_model = Vgg::tiny(3, 8, 4, 3);
    let quiet = AdQuantizer::new(config).run(&mut quiet_model, &train, &test);

    let mut observed_model = Vgg::tiny(3, 8, 4, 3);
    let sink = Arc::new(MemorySink::new());
    let observed = AdQuantizer::new(config).with_telemetry(sink.clone()).run(
        &mut observed_model,
        &train,
        &test,
    );

    assert!(!sink.events().is_empty(), "sink saw no events");
    assert_eq!(
        serde_json::to_string(&quiet).expect("serialise"),
        serde_json::to_string(&observed).expect("serialise"),
        "attaching telemetry changed the run result"
    );
}

#[test]
fn jsonl_sink_writes_one_parseable_event_per_line() {
    let path =
        std::env::temp_dir().join(format!("adq-telemetry-test-{}.jsonl", std::process::id()));
    let (train, test) = tiny_task();
    let mut model = Vgg::tiny(3, 8, 4, 4);
    {
        let sink = JsonlSink::create(&path).expect("create jsonl file");
        AdQuantizer::new(AdqConfig::fast()).run_with_sink(&mut model, &train, &test, &sink);
    }
    let contents = std::fs::read_to_string(&path).expect("read back");
    std::fs::remove_file(&path).ok();

    let events: Vec<TelemetryEvent> = contents
        .lines()
        .map(|line| serde_json::from_str(line).expect("every line parses"))
        .collect();
    assert!(events.len() >= 4);
    assert_eq!(events.first().map(TelemetryEvent::kind), Some("RunStarted"));
    assert_eq!(
        events.last().map(TelemetryEvent::kind),
        Some("RunCompleted")
    );
    for kind in [
        "EpochCompleted",
        "DensityMeasured",
        "IterationCompleted",
        "EnergyEstimated",
        "BitWidthAssigned",
    ] {
        assert!(
            events.iter().any(|e| e.kind() == kind),
            "stream is missing {kind}"
        );
    }
}

#[test]
fn hot_path_histograms_fill_during_a_run() {
    let (_, _) = run_with_memory_sink(5);
    let registry = adq_telemetry::metrics::global();
    for name in [
        "tensor.im2col",
        "tensor.matmul",
        "quant.forward",
        "ad.meter",
    ] {
        assert!(
            registry.histogram(name).count() > 0,
            "no timings recorded for {name}"
        );
    }
    assert!(registry.counter("core.train_batches").get() > 0);
}
