//! Integration tests for hierarchical tracing through a full Algorithm-1
//! run: phase coverage, span-tree shape, Chrome-trace export validity,
//! wall-time reconciliation, and the observation-only contract with
//! tracing enabled.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, PoisonError};

use adq_core::{AdQuantizer, AdqConfig, AdqOutcome};
use adq_datasets::SyntheticSpec;
use adq_nn::train::Dataset;
use adq_nn::Vgg;
use adq_telemetry::span;
use adq_telemetry::trace::{self, TraceSpan};
use adq_telemetry::{MemorySink, NullSink, TelemetryEvent};

/// The tracer level is process-global; tests in this file must not
/// interleave.
static TRACER: Mutex<()> = Mutex::new(());

fn tiny_task() -> (Dataset, Dataset) {
    SyntheticSpec::cifar10_like()
        .with_classes(4)
        .with_resolution(8)
        .with_samples(8, 4)
        .generate()
}

/// One traced run at the given level; returns the outcome and the spans
/// that reached the sink as `SpanClosed` events.
fn traced_run(seed: u64, level: u8) -> (AdqOutcome, Vec<TraceSpan>) {
    let (train, test) = tiny_task();
    let mut model = Vgg::tiny(3, 8, 4, seed);
    let sink = Arc::new(MemorySink::new());
    span::set_level(level);
    let outcome = AdQuantizer::new(AdqConfig::fast())
        .with_telemetry(sink.clone())
        .run(&mut model, &train, &test);
    span::set_level(0);
    span::drain();
    (outcome, trace::spans_from_events(&sink.take()))
}

#[test]
fn traced_run_covers_every_iteration_phase() {
    let _guard = TRACER.lock().unwrap_or_else(PoisonError::into_inner);
    span::set_level(0);
    span::drain();

    let (outcome, spans) = traced_run(31, 1);
    assert!(!spans.is_empty(), "traced run produced no spans");

    let iterations: Vec<&TraceSpan> = spans.iter().filter(|s| s.name == "adq.iteration").collect();
    assert_eq!(
        iterations.len(),
        outcome.iterations.len(),
        "one top-level span per Algorithm-1 iteration"
    );
    for span in &iterations {
        assert_eq!(span.parent, 0, "iteration spans are roots");
    }

    // Every phase the controller executed must appear, parented under an
    // iteration span.
    let phase_names: BTreeSet<&str> = spans
        .iter()
        .filter(|s| s.name.starts_with("adq.phase."))
        .map(|s| s.name.as_str())
        .collect();
    for required in [
        "adq.phase.train",
        "adq.phase.ad_measure",
        "adq.phase.evaluate",
        "adq.phase.energy_eval",
        "adq.phase.bitwidth_update",
        "adq.phase.prune",
    ] {
        assert!(
            phase_names.contains(required),
            "missing phase span {required}; got {phase_names:?}"
        );
    }
    // Every phase span roots at an iteration span (directly, or through
    // the train phase for the per-epoch AD measurements).
    for phase in spans.iter().filter(|s| s.name.starts_with("adq.phase.")) {
        let mut cursor = phase.parent;
        let mut reached_iteration = false;
        for _ in 0..16 {
            let Some(parent) = spans.iter().find(|s| s.id == cursor) else {
                break;
            };
            if parent.name == "adq.iteration" {
                reached_iteration = true;
                break;
            }
            cursor = parent.parent;
        }
        assert!(
            reached_iteration,
            "phase span {} does not root at an iteration span",
            phase.name
        );
    }

    // Training internals nest below the train phase.
    assert!(
        spans.iter().any(|s| s.name == "adq.epoch"),
        "missing per-epoch spans"
    );
    assert!(
        spans.iter().any(|s| s.name == "nn.batch"),
        "missing batch spans from the trainer"
    );
}

#[test]
fn chrome_trace_from_run_is_valid_and_reconciles() {
    let _guard = TRACER.lock().unwrap_or_else(PoisonError::into_inner);
    span::set_level(0);
    span::drain();

    let (_, spans) = traced_run(32, 1);
    let doc = trace::chrome_trace(&spans);
    let count = trace::validate_chrome_trace(&doc).expect("valid Chrome trace");
    assert_eq!(count, spans.len());

    // Per-iteration reconciliation: the direct-child phase durations of an
    // iteration span must sum to no more than its wall time, and cover it
    // within tolerance (the controller does little outside its phases; 25%
    // leaves room for per-iteration bookkeeping on noisy CI machines).
    for iteration in spans.iter().filter(|s| s.name == "adq.iteration") {
        let child_sum: u64 = spans
            .iter()
            .filter(|s| s.parent == iteration.id)
            .map(TraceSpan::duration_ns)
            .sum();
        let wall = iteration.duration_ns();
        assert!(
            child_sum <= wall,
            "phases exceed their iteration: {child_sum} > {wall}"
        );
        assert!(
            child_sum as f64 >= wall as f64 * 0.75,
            "phases cover too little of the iteration: {child_sum} of {wall}"
        );
    }

    let folded = trace::collapsed_stacks(&spans);
    assert!(
        folded.lines().any(|l| l.starts_with("adq.iteration")),
        "collapsed stacks must root at the iteration spans"
    );
}

#[test]
fn tracing_is_observation_only() {
    let _guard = TRACER.lock().unwrap_or_else(PoisonError::into_inner);
    span::set_level(0);
    span::drain();

    let (train, test) = tiny_task();

    // Baseline: no sink, no tracing.
    let mut model = Vgg::tiny(3, 8, 4, 33);
    let plain = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);

    // Tracing at the verbose level into a NullSink.
    let mut model = Vgg::tiny(3, 8, 4, 33);
    span::set_level(2);
    let null_traced = AdQuantizer::new(AdqConfig::fast()).run(&mut model, &train, &test);
    span::set_level(0);
    span::drain();

    // Tracing at the verbose level into a MemorySink.
    let (memory_traced, spans) = traced_run(33, 2);
    assert!(
        spans.iter().any(|s| s.name == "quant.fake_quantize"),
        "verbose tracing must reach the quantizer"
    );

    let reference = serde_json::to_string(&plain).expect("serialise");
    assert_eq!(
        reference,
        serde_json::to_string(&null_traced).expect("serialise"),
        "tracing into a NullSink changed the outcome"
    );
    assert_eq!(
        reference,
        serde_json::to_string(&memory_traced).expect("serialise"),
        "tracing into a MemorySink changed the outcome"
    );

    // And with tracing fully off, attaching no sink vs. the NullSink is
    // trivially identical too.
    let mut model = Vgg::tiny(3, 8, 4, 33);
    let null_plain = AdQuantizer::new(AdqConfig::fast())
        .with_telemetry(Arc::new(NullSink))
        .run(&mut model, &train, &test);
    assert_eq!(
        reference,
        serde_json::to_string(&null_plain).expect("serialise")
    );
}

#[test]
fn span_events_only_appear_when_tracing_is_enabled() {
    let _guard = TRACER.lock().unwrap_or_else(PoisonError::into_inner);
    span::set_level(0);
    span::drain();

    let (train, test) = tiny_task();
    let mut model = Vgg::tiny(3, 8, 4, 34);
    let sink = Arc::new(MemorySink::new());
    AdQuantizer::new(AdqConfig::fast())
        .with_telemetry(sink.clone())
        .run(&mut model, &train, &test);
    let events = sink.take();
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::SpanClosed { .. })),
        "tracing disabled must emit zero SpanClosed events"
    );
}
