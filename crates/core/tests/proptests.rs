//! Property-based tests for the controller's arithmetic (DESIGN.md §7):
//! eqn-3 fixed points, eqn-4 monotonicity, preset-builder invariants.

use adq_core::paper;
use adq_core::{training_complexity, IterationCost};
use adq_energy::EnergyModel;
use adq_quant::BitWidth;
use proptest::prelude::*;

proptest! {
    /// Iterating eqn 3 with any density sequence is a monotone decreasing
    /// chain that reaches a fixed point ≥ 1 bit — Algorithm 1 cannot cycle.
    #[test]
    fn eqn3_chains_terminate(
        start in 1u32..=32,
        densities in proptest::collection::vec(0.0f64..=1.0, 1..20),
    ) {
        let mut bits = BitWidth::new(start).expect("valid");
        let mut prev = bits;
        for &d in &densities {
            bits = bits.scaled_by_density(d);
            prop_assert!(bits <= prev, "chain increased");
            prop_assert!(bits.get() >= 1);
            prev = bits;
        }
        // a full-density step is always a fixed point
        prop_assert_eq!(bits.scaled_by_density(1.0), bits);
    }

    #[test]
    fn complexity_additive_in_iterations(
        reductions in proptest::collection::vec(0.5f64..20.0, 1..6),
        epochs in proptest::collection::vec(1usize..50, 1..6),
        baseline in 1usize..500,
    ) {
        let n = reductions.len().min(epochs.len());
        let costs: Vec<IterationCost> = reductions
            .iter()
            .zip(&epochs)
            .take(n)
            .map(|(&r, &e)| IterationCost::new(r, e))
            .collect();
        let total = training_complexity(&costs, baseline);
        let sum: f64 = costs
            .iter()
            .map(|c| training_complexity(std::slice::from_ref(c), baseline))
            .sum();
        prop_assert!((total - sum).abs() < 1e-9 * (1.0 + sum));
    }

    #[test]
    fn complexity_decreases_with_reduction(
        epochs in 1usize..100,
        baseline in 1usize..300,
        r1 in 1.0f64..10.0,
        extra in 0.1f64..10.0,
    ) {
        let lo = training_complexity(&[IterationCost::new(r1 + extra, epochs)], baseline);
        let hi = training_complexity(&[IterationCost::new(r1, epochs)], baseline);
        prop_assert!(lo < hi);
    }

    /// VGG19 spec invariants under arbitrary (legal) bit assignments.
    #[test]
    fn vgg19_spec_macs_independent_of_bits(bits in proptest::collection::vec(1u32..=16, 17)) {
        let spec = paper::vgg19_spec("p", 32, 10, &bits, &paper::VGG19_CHANNELS, &[]);
        let base = paper::vgg19_baseline(32, 10, 16);
        prop_assert_eq!(spec.mac_count(), base.mac_count());
        prop_assert_eq!(spec.layers().len(), 17);
    }

    #[test]
    fn vgg19_lower_uniform_bits_cost_less(bits in 1u32..16) {
        let model = EnergyModel::paper_45nm();
        let lower = paper::vgg19_baseline(32, 10, bits);
        let upper = paper::vgg19_baseline(32, 10, bits + 1);
        prop_assert!(lower.energy_pj(&model) < upper.energy_pj(&model));
    }

    /// Channel pruning can only reduce MAC and memory counts.
    #[test]
    fn pruned_vgg19_never_costs_more(scale in 1usize..4) {
        let pruned: Vec<usize> = paper::VGG19_CHANNELS
            .iter()
            .map(|&c| (c / (scale + 1)).max(1))
            .collect();
        let bits = [16u32; 17];
        let full = paper::vgg19_spec("f", 32, 10, &bits, &paper::VGG19_CHANNELS, &[]);
        let cut = paper::vgg19_spec("c", 32, 10, &bits, &pruned, &[]);
        prop_assert!(cut.mac_count() < full.mac_count());
        prop_assert!(cut.mem_count() < full.mem_count());
    }

    #[test]
    fn expand_bits18_roundtrip(bits in proptest::collection::vec(1u32..=16, 18)) {
        let expanded = paper::expand_bits18_to_26(&bits);
        prop_assert_eq!(expanded[0], bits[0]);
        prop_assert_eq!(expanded[25], bits[17]);
        for block in 0..8 {
            prop_assert_eq!(expanded[1 + 3 * block], bits[1 + 2 * block]);
            prop_assert_eq!(expanded[2 + 3 * block], bits[2 + 2 * block]);
            prop_assert_eq!(expanded[3 + 3 * block], bits[2 + 2 * block]);
        }
    }
}
