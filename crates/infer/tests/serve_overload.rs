//! Overload and shutdown behavior of the serving layer, driven with a
//! deliberately slow model stub so the bounded queue actually fills.
//!
//! The guarantees under test:
//!
//! * the request queue never grows past `queue_cap` — overload degrades
//!   into typed shed frames, not unbounded memory;
//! * `serve.shed_total` / `serve.queue_rejected` count every shed;
//! * **zero lost responses**: every request a client sends gets exactly
//!   one typed answer (logits, shed, or error) — even requests admitted
//!   right before a shutdown;
//! * [`OverloadPolicy::ShedOldest`] sheds the *queued oldest* request,
//!   not the newcomer;
//! * a concurrent shutdown at c ≥ 4 drains admitted work and ends every
//!   connection with a goodbye frame, never an unexplained EOF.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use adq_infer::load_generate;
use adq_infer::serve::{Client, LoadStats, OverloadPolicy, Reply, ServeConfig, ServeModel, Server};
use adq_telemetry::metrics;
use adq_tensor::Tensor;

/// A model that sleeps per batch and tracks the largest batch it ever
/// saw. Slow enough that a burst of clients outruns the executor and
/// fills the admission queue.
struct SlowModel {
    classes: usize,
    delay: Duration,
    batches: AtomicUsize,
    rows: AtomicUsize,
    max_batch_seen: AtomicUsize,
}

impl SlowModel {
    fn new(delay: Duration) -> Self {
        Self {
            classes: 3,
            delay,
            batches: AtomicUsize::new(0),
            rows: AtomicUsize::new(0),
            max_batch_seen: AtomicUsize::new(0),
        }
    }
}

impl ServeModel for SlowModel {
    fn input_shape(&self) -> (usize, usize) {
        (1, 2) // 4 floats per image
    }

    fn classes(&self) -> usize {
        self.classes
    }

    fn run(&self, images: &Tensor) -> Tensor {
        let n = images.dims()[0];
        std::thread::sleep(self.delay);
        self.batches.fetch_add(1, Ordering::SeqCst);
        self.rows.fetch_add(n, Ordering::SeqCst);
        self.max_batch_seen.fetch_max(n, Ordering::SeqCst);
        // logits echo the first input value so clients can check identity
        let mut out = Tensor::zeros(&[n, self.classes]);
        for i in 0..n {
            let tag = images.data()[i * self.input_len()];
            for j in 0..self.classes {
                out.data_mut()[i * self.classes + j] = tag + j as f32;
            }
        }
        out
    }
}

fn counter(name: &str) -> u64 {
    metrics::global().counter(name).get()
}

/// A burst far larger than the queue can hold: every request must come
/// back as either logits or a typed shed frame — none lost, none hung —
/// while the queue stays within its bound and the shed counters advance.
#[test]
fn reject_policy_bounds_queue_and_sheds_with_typed_frames() {
    let model = Arc::new(SlowModel::new(Duration::from_millis(30)));
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&model) as Arc<dyn ServeModel>,
        ServeConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            replicas: 1,
            conn_workers: 2,
            queue_cap: 3,
            overload: OverloadPolicy::Reject,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let input_len = model.input_len();

    let shed_before = counter("serve.shed_total");
    let rejected_before = counter("serve.queue_rejected");

    const CLIENTS: usize = 12;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for worker in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let input = vec![worker as f32; input_len];
            barrier.wait();
            let mut answered = 0usize;
            let mut shed = 0usize;
            // two rounds so late arrivals also contend with a full queue
            for _ in 0..2 {
                match client.infer(&input).unwrap() {
                    Reply::Logits(logits) => {
                        // identity check: the echo model tags logits with
                        // the first input value
                        assert_eq!(logits[0], worker as f32, "got another client's response");
                        answered += 1;
                    }
                    Reply::Shed(reason) => {
                        assert!(!reason.is_empty(), "shed frame carries a reason");
                        shed += 1;
                    }
                    Reply::Refused(msg) => panic!("unexpected refusal: {msg}"),
                }
            }
            (answered, shed)
        }));
    }
    let mut answered = 0usize;
    let mut shed = 0usize;
    for handle in handles {
        let (a, s) = handle.join().unwrap();
        answered += a;
        shed += s;
    }

    // zero lost responses: every request resolved to a typed reply
    assert_eq!(answered + shed, CLIENTS * 2);
    assert!(answered > 0, "the server answered nothing");
    assert!(
        shed > 0,
        "12 clients against queue_cap=3 with a 30ms/batch model must shed"
    );
    // the executor never saw more work queued than the bound allows
    assert!(
        model.max_batch_seen.load(Ordering::SeqCst) <= 2,
        "batches exceeded max_batch"
    );
    assert_eq!(
        model.rows.load(Ordering::SeqCst),
        answered,
        "model executed a different number of rows than clients got answers"
    );
    // counters moved by exactly the observed sheds, and rejects == sheds
    // under the Reject policy
    assert_eq!(counter("serve.shed_total") - shed_before, shed as u64);
    assert_eq!(
        counter("serve.queue_rejected") - rejected_before,
        shed as u64
    );
    // bounded depth is also visible on the gauge the dashboard reads
    assert!(metrics::global().gauge("serve.queue_depth").get() <= 3.0);

    server.shutdown();
}

/// Under `ShedOldest` the *queued* oldest request is evicted and gets the
/// shed frame, while the newcomer is admitted: with a single in-flight
/// batch pinning the executor, a later request must displace an earlier
/// one.
#[test]
fn shed_oldest_policy_evicts_the_oldest_queued_request() {
    let model = Arc::new(SlowModel::new(Duration::from_millis(120)));
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&model) as Arc<dyn ServeModel>,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            replicas: 1,
            conn_workers: 1,
            queue_cap: 1,
            overload: OverloadPolicy::ShedOldest,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let input_len = model.input_len();
    let shed_before = counter("serve.shed_total");
    let rejected_before = counter("serve.queue_rejected");

    // request A keeps the executor busy for 120ms; B parks in the queue;
    // C arrives while the queue is full and displaces B
    let replies: Arc<Mutex<Vec<(char, Reply)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for (tag, delay_ms) in [('a', 0u64), ('b', 30), ('c', 60)] {
        let replies = Arc::clone(&replies);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(delay_ms));
            let reply = client.infer(&vec![tag as u32 as f32; input_len]).unwrap();
            replies.lock().unwrap().push((tag, reply));
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let replies = replies.lock().unwrap();
    let reply_of = |tag: char| -> &Reply {
        &replies
            .iter()
            .find(|(t, _)| *t == tag)
            .expect("every client replied")
            .1
    };
    assert!(
        matches!(reply_of('a'), Reply::Logits(_)),
        "the in-flight request must complete, got {:?}",
        reply_of('a')
    );
    assert!(
        matches!(reply_of('b'), Reply::Shed(_)),
        "the oldest queued request must be the one shed, got {:?}",
        reply_of('b')
    );
    assert!(
        matches!(reply_of('c'), Reply::Logits(_)),
        "the newcomer must be admitted in the vacated slot, got {:?}",
        reply_of('c')
    );
    // ShedOldest sheds without rejecting newcomers
    assert_eq!(counter("serve.shed_total") - shed_before, 1);
    assert_eq!(counter("serve.queue_rejected") - rejected_before, 0);

    server.shutdown();
}

/// Shutdown racing c ≥ 4 active clients: requests admitted before the
/// queue closed are still answered, later ones get a typed "shutting
/// down" refusal, and every connection ends with a goodbye frame — the
/// client-visible close is always explained.
#[test]
fn concurrent_shutdown_drains_and_says_goodbye() {
    let model = Arc::new(SlowModel::new(Duration::from_millis(10)));
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&model) as Arc<dyn ServeModel>,
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            replicas: 2,
            conn_workers: 2,
            queue_cap: 64,
            overload: OverloadPolicy::Reject,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let input_len = model.input_len();

    const CLIENTS: usize = 5;
    let mut handles = Vec::new();
    for worker in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let input = vec![worker as f32; input_len];
            let mut answered = 0usize;
            loop {
                match client.infer(&input) {
                    Ok(Reply::Logits(logits)) => {
                        assert_eq!(logits[0], worker as f32);
                        answered += 1;
                    }
                    // admission refusals during drain are typed, not EOFs
                    Ok(Reply::Refused(msg)) => {
                        assert!(msg.contains("shutting down"), "unexpected refusal: {msg}");
                        break;
                    }
                    Ok(Reply::Shed(reason)) => panic!("unexpected shed: {reason}"),
                    // after the drain the server says goodbye and closes;
                    // the client surfaces that as ConnectionAborted
                    Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => {
                        return (answered, true);
                    }
                    Err(e) => panic!("connection died without a goodbye: {e}"),
                }
            }
            // refused mid-drain: the goodbye frame must still arrive
            client.expect_goodbye().unwrap();
            (answered, true)
        }));
    }

    // let the clients get a few responses in before pulling the plug
    std::thread::sleep(Duration::from_millis(60));
    server.shutdown();

    let mut answered_total = 0usize;
    for handle in handles {
        let (answered, said_goodbye) = handle.join().unwrap();
        assert!(said_goodbye, "a connection closed without a goodbye frame");
        answered_total += answered;
    }
    // every answered request corresponds to a row the model computed —
    // nothing admitted was dropped, nothing was double-answered
    assert_eq!(model.rows.load(Ordering::SeqCst), answered_total);
    assert!(answered_total > 0, "shutdown raced ahead of all requests");
}

/// `load_generate` against an overloaded server reports sheds in
/// [`LoadStats::shed`] and still completes every request with a typed
/// outcome (no errors).
#[test]
fn load_generate_counts_sheds_separately_from_errors() {
    let model = Arc::new(SlowModel::new(Duration::from_millis(20)));
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&model) as Arc<dyn ServeModel>,
        ServeConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            replicas: 1,
            conn_workers: 2,
            queue_cap: 2,
            overload: OverloadPolicy::Reject,
        },
    )
    .unwrap();
    let stats: LoadStats = load_generate(server.local_addr(), 8, 6, model.input_len()).unwrap();
    assert_eq!(stats.errors, 0, "sheds must not be misreported as errors");
    assert!(
        stats.shed > 0,
        "8 closed-loop clients over queue_cap=2 shed"
    );
    assert_eq!(
        stats.requests + stats.shed,
        8 * 6,
        "every request resolved to exactly one outcome"
    );
    server.shutdown();
}
