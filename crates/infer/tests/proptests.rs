//! Property-based bit-exactness tests for the integer kernels: every
//! dispatched path (AVX2 when the CPU has it, scalar otherwise) must
//! agree with the plain wide-integer reference at every length — the
//! requantization algebra in `compile.rs` is only correct if the raw
//! code dot products are exact.

use adq_infer::qgemm::{
    dot4_u8, dot_nib, dot_nib_reference, dot_u16, dot_u16_reference, dot_u8, dot_u8_reference,
    qgemm, Container, PackedMatrix,
};
use proptest::prelude::*;

/// Exact dot product in plain u64/i64 arithmetic — the ground truth all
/// kernel paths must reproduce bit-for-bit.
fn wide_dot(a: &[u64], w: &[u64]) -> i64 {
    a.iter().zip(w).map(|(&x, &y)| (x * y) as i64).sum()
}

/// Packs nibble codes (values 0..=15) low-nibble-first, the layout
/// `Container::Nib` uses; an odd tail leaves the final high nibble zero.
fn pack_nibbles(codes: &[u64]) -> Vec<u8> {
    let mut out = vec![0u8; codes.len().div_ceil(2)];
    for (i, &c) in codes.iter().enumerate() {
        out[i / 2] |= (c as u8) << ((i & 1) * 4);
    }
    out
}

fn codes_pair(
    max: u64,
    len: impl Strategy<Value = usize>,
) -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    len.prop_flat_map(move |n| {
        (
            proptest::collection::vec(0..=max, n),
            proptest::collection::vec(0..=max, n),
        )
    })
}

proptest! {
    // Lengths up to 128 sweep every tail residue of the 16/8/64-lane
    // SIMD strides several times over.
    #[test]
    fn u8_dot_is_bit_exact((a, w) in codes_pair(255, 0usize..=128)) {
        let a8: Vec<u8> = a.iter().map(|&c| c as u8).collect();
        let w8: Vec<u8> = w.iter().map(|&c| c as u8).collect();
        let want = wide_dot(&a, &w);
        prop_assert_eq!(dot_u8_reference(&a8, &w8), want);
        prop_assert_eq!(dot_u8(&a8, &w8), want);
    }

    #[test]
    fn u8_blocked_dot_matches_four_plain_dots(
        (a, w0) in codes_pair(255, 0usize..=128),
        seed in 0u64..1000,
    ) {
        let a8: Vec<u8> = a.iter().map(|&c| c as u8).collect();
        // derive three more weight rows of the same length from the seed
        let mut rows = vec![w0.iter().map(|&c| c as u8).collect::<Vec<u8>>()];
        let mut state = seed;
        for _ in 0..3 {
            rows.push(
                (0..a.len())
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) as u8
                    })
                    .collect(),
            );
        }
        let got = dot4_u8(&a8, [&rows[0], &rows[1], &rows[2], &rows[3]]);
        for j in 0..4 {
            prop_assert_eq!(got[j], dot_u8_reference(&a8, &rows[j]), "row {}", j);
        }
    }

    #[test]
    fn u16_dot_is_bit_exact((a, w) in codes_pair(65_535, 0usize..=64)) {
        let a16: Vec<u16> = a.iter().map(|&c| c as u16).collect();
        let w16: Vec<u16> = w.iter().map(|&c| c as u16).collect();
        let want = wide_dot(&a, &w);
        prop_assert_eq!(dot_u16_reference(&a16, &w16), want);
        prop_assert_eq!(dot_u16(&a16, &w16), want);
    }

    #[test]
    fn nibble_dot_is_bit_exact((a, w) in codes_pair(15, 0usize..=160)) {
        let ap = pack_nibbles(&a);
        let wp = pack_nibbles(&w);
        let want = wide_dot(&a, &w);
        prop_assert_eq!(dot_nib_reference(&ap, &wp), want);
        prop_assert_eq!(dot_nib(&ap, &wp), want);
    }

    // End-to-end through packing and dispatch: for every storage
    // container, a full qgemm over packed code matrices must emit the
    // exact wide-integer accumulator for every (row, row) pair.
    #[test]
    fn qgemm_emits_exact_accumulators(
        container_pick in 0usize..3,
        m in 1usize..6,
        o in 1usize..6,
        k in 0usize..40,
        seed in 0u64..1000,
    ) {
        let (container, max) = [
            (Container::Nib, 15u64),
            (Container::U8, 255),
            (Container::U16, 65_535),
        ][container_pick];
        let mut state = seed;
        let mut draw = |n: usize| -> Vec<u64> {
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) % (max + 1)
                })
                .collect()
        };
        let act_codes = draw(m * k);
        let w_codes = draw(o * k);
        let to_u16 = |v: &[u64]| v.iter().map(|&c| c as u16).collect::<Vec<u16>>();
        let acts = PackedMatrix::from_codes(&to_u16(&act_codes), m, k, container);
        let weights = PackedMatrix::from_codes(&to_u16(&w_codes), o, k, container);
        let mut checked = 0usize;
        qgemm(&acts, &weights, |mi, oi, acc| {
            let want = wide_dot(&act_codes[mi * k..(mi + 1) * k], &w_codes[oi * k..(oi + 1) * k]);
            assert_eq!(acc, want, "m={mi} o={oi} k={k} {container:?}");
            checked += 1;
        });
        prop_assert_eq!(checked, m * o);
    }
}

/// Deterministic sweep across the i32-chunk boundary the blocked kernels
/// split on — proptest lengths stay small, so cover the boundary here.
#[test]
fn u8_paths_agree_past_the_chunk_boundary() {
    const CHUNK: usize = 16_384;
    for len in [CHUNK - 1, CHUNK, CHUNK + 1, CHUNK + 33] {
        let a: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
        let w: Vec<u8> = (0..len).map(|i| (i * 101 % 256) as u8).collect();
        let wide: Vec<u64> = a.iter().map(|&c| u64::from(c)).collect();
        let wide_w: Vec<u64> = w.iter().map(|&c| u64::from(c)).collect();
        let want = wide_dot(&wide, &wide_w);
        assert_eq!(dot_u8(&a, &w), want, "len {len}");
        let four = dot4_u8(&a, [&w, &w, &w, &w]);
        assert_eq!(four, [want; 4], "len {len}");
    }
}
