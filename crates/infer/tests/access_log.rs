//! Request-lifecycle observability contracts of the serving layer:
//!
//! * **version tolerance** — an old-format client (no trace-id flag)
//!   gets byte-for-byte the pre-tracing protocol, while a tracing client
//!   on the same server receives echoed trace ids;
//! * **observation-only logging** — a server with an access log attached
//!   produces byte-identical responses to one without, for the same
//!   request byte sequence;
//! * **exact accounting** — ok/shed/shutdown paths each produce one
//!   well-formed access-log record, and record counts reconcile with the
//!   global `serve.*` counters and the log's own summary line.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use adq_infer::load_generate_traced;
use adq_infer::serve::{Client, OverloadPolicy, Reply, ServeConfig, ServeModel, Server};
use adq_telemetry::lifecycle::{self, AccessLog, RequestRecord};
use adq_telemetry::metrics;
use adq_tensor::Tensor;

/// The serving metrics are process-global and the tests in this binary
/// run on parallel threads; every test that asserts counter deltas or
/// record counts takes this lock so another test's server can't
/// interleave its own records.
fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic echo model: logits are `first_input + column`, so any
/// two servers given the same bytes answer with the same bytes.
struct EchoModel {
    classes: usize,
    delay: Duration,
    rows: AtomicUsize,
}

impl EchoModel {
    fn new(delay: Duration) -> Self {
        Self {
            classes: 3,
            delay,
            rows: AtomicUsize::new(0),
        }
    }
}

impl ServeModel for EchoModel {
    fn input_shape(&self) -> (usize, usize) {
        (1, 2) // 4 floats per image
    }

    fn classes(&self) -> usize {
        self.classes
    }

    fn run(&self, images: &Tensor) -> Tensor {
        let n = images.dims()[0];
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.rows.fetch_add(n, Ordering::SeqCst);
        let mut out = Tensor::zeros(&[n, self.classes]);
        for i in 0..n {
            let tag = images.data()[i * self.input_len()];
            for j in 0..self.classes {
                out.data_mut()[i * self.classes + j] = tag + j as f32;
            }
        }
        out
    }
}

fn counter(name: &str) -> u64 {
    metrics::global().counter(name).get()
}

fn log_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adq_access_{tag}_{}.jsonl", std::process::id()))
}

// ---- raw-socket protocol helpers (no Client involved) -------------------

fn write_raw_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&u32::to_le_bytes(payload.len() as u32))
        .unwrap();
    stream.write_all(payload).unwrap();
    stream.flush().unwrap();
}

fn read_raw_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    stream.read_exact(&mut payload).unwrap();
    payload
}

/// Builds an infer request payload with an explicit kind byte (so tests
/// can set or omit the trace flag) and an arbitrary float body.
fn infer_payload(kind_byte: u8, id: u64, input: &[f32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(13 + input.len() * 4);
    payload.push(kind_byte);
    payload.extend_from_slice(&id.to_le_bytes());
    payload.extend_from_slice(&u32::to_le_bytes(input.len() as u32));
    for v in input {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload
}

const KIND_INFER: u8 = 1;
const FLAG_TRACED: u8 = 0x80;
const STATUS_OK: u8 = 0;
const STATUS_ERR: u8 = 1;
const STATUS_GOODBYE: u8 = 3;

/// An old-format client (kind byte without the trace flag) gets exactly
/// the pre-tracing response layout — no trailer — while a tracing client
/// on the same server receives strictly increasing echoed trace ids.
#[test]
fn traced_protocol_coexists_with_old_format_clients() {
    let _guard = test_lock();
    let model = Arc::new(EchoModel::new(Duration::ZERO));
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&model) as Arc<dyn ServeModel>,
        ServeConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let input = vec![2.0f32; model.input_len()];

    // old format over a raw socket: the response is exactly
    // [status][id: 8][n: 4][n × f32] with no trace trailer
    let mut raw = TcpStream::connect(addr).unwrap();
    write_raw_frame(&mut raw, &infer_payload(KIND_INFER, 7, &input));
    let response = read_raw_frame(&mut raw);
    assert_eq!(response.len(), 13 + model.classes() * 4);
    assert_eq!(response[0], STATUS_OK);
    assert_eq!(u64::from_le_bytes(response[1..9].try_into().unwrap()), 7);
    drop(raw);

    // the library client without tracing is the same old format
    let mut client = Client::connect(addr).unwrap();
    let logits = client.infer(&input).unwrap().into_result().unwrap();
    assert_eq!(logits, vec![2.0, 3.0, 4.0]);

    // tracing client: every reply carries a fresh, increasing trace id
    let mut last = 0u64;
    for _ in 0..3 {
        let (reply, trace_id) = client.infer_traced(&input).unwrap();
        assert!(matches!(reply, Reply::Logits(_)));
        let id = trace_id.expect("traced request echoes a trace id");
        assert!(id > last, "trace ids must increase: {id} after {last}");
        last = id;
    }

    server.shutdown();
}

/// The observation-only contract: a logged and an unlogged server given
/// the same request byte sequence answer with byte-identical responses —
/// ok, traced, and error paths included.
#[test]
fn access_log_does_not_change_response_bytes() {
    let _guard = test_lock();
    let path = log_path("identity");
    let make_server = |log: Option<AccessLog>| {
        Server::bind_logged(
            "127.0.0.1:0",
            Arc::new(EchoModel::new(Duration::ZERO)) as Arc<dyn ServeModel>,
            ServeConfig {
                max_batch: 2,
                max_wait: Duration::from_millis(1),
                ..ServeConfig::default()
            },
            log,
        )
        .unwrap()
    };
    let mut logged = make_server(Some(AccessLog::create(&path, 4).unwrap()));
    let mut plain = make_server(None);

    // the same byte sequence, synchronously, on one connection each:
    // untraced ok, traced ok, traced bad-length error, untraced ok
    let good = vec![1.5f32; 4];
    let frames = [
        infer_payload(KIND_INFER, 1, &good),
        infer_payload(KIND_INFER | FLAG_TRACED, 2, &good),
        infer_payload(KIND_INFER | FLAG_TRACED, 3, &[9.0, 9.0]),
        infer_payload(KIND_INFER, 4, &good),
    ];
    let drive = |addr| -> Vec<Vec<u8>> {
        let mut stream = TcpStream::connect(addr).unwrap();
        frames
            .iter()
            .map(|frame| {
                write_raw_frame(&mut stream, frame);
                read_raw_frame(&mut stream)
            })
            .collect()
    };
    let logged_responses = drive(logged.local_addr());
    let plain_responses = drive(plain.local_addr());
    assert_eq!(
        logged_responses, plain_responses,
        "access log must not change a single response byte"
    );
    // the traced ok response really does carry the 8-byte trailer
    assert_eq!(logged_responses[1].len(), 13 + 3 * 4 + 8);

    Client::connect(logged.local_addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    logged.wait();
    Client::connect(plain.local_addr())
        .unwrap()
        .shutdown_server()
        .unwrap();
    plain.wait();

    // and the log saw all four requests: 3 ok + 1 error
    let view = lifecycle::read_records(&path).unwrap();
    assert_eq!(view.malformed, 0);
    assert_eq!(view.records.len(), 4);
    let ok = records_with(&view.records, lifecycle::OUTCOME_OK);
    let errors = records_with(&view.records, lifecycle::OUTCOME_ERROR);
    assert_eq!((ok.len(), errors.len()), (3, 1));
    let summary = view.summary.expect("closed log has a summary");
    assert_eq!(summary.records, 4);
    assert_eq!(summary.dropped, 0);
    std::fs::remove_file(&path).ok();
}

fn records_with<'a>(records: &'a [RequestRecord], outcome: &str) -> Vec<&'a RequestRecord> {
    records.iter().filter(|r| r.outcome == outcome).collect()
}

/// Overload against a full queue: every shed and every answered request
/// produces exactly one record, reconciling three ways — client-observed
/// outcomes, global counters, and the log's own summary.
#[test]
fn shed_and_ok_outcomes_reconcile_with_counters() {
    let _guard = test_lock();
    let path = log_path("shed");
    let model = Arc::new(EchoModel::new(Duration::from_millis(25)));
    let mut server = Server::bind_logged(
        "127.0.0.1:0",
        Arc::clone(&model) as Arc<dyn ServeModel>,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            replicas: 1,
            conn_workers: 2,
            queue_cap: 1,
            overload: OverloadPolicy::Reject,
        },
        Some(AccessLog::create(&path, 4).unwrap()),
    )
    .unwrap();
    let shed_before = counter("serve.shed_total");
    let requests_before = counter("serve.requests");

    let load = load_generate_traced(server.local_addr(), 6, 3, model.input_len()).unwrap();
    assert_eq!(load.stats.errors, 0);
    assert!(
        load.stats.shed > 0,
        "6 closed-loop clients over queue_cap=1 with a 25ms model must shed"
    );
    assert_eq!(
        load.trace_ids.len() as u64,
        load.stats.requests,
        "every ok reply must carry a trace id"
    );

    server.shutdown();
    let view = lifecycle::read_records(&path).unwrap();
    assert_eq!(view.malformed, 0);

    // one record per request, split exactly as the clients observed
    let ok = records_with(&view.records, lifecycle::OUTCOME_OK);
    let shed = records_with(&view.records, lifecycle::OUTCOME_SHED);
    assert_eq!(ok.len() as u64, load.stats.requests);
    assert_eq!(shed.len() as u64, load.stats.shed);
    assert_eq!(view.records.len() as u64, 6 * 3);

    // counters moved by the same amounts
    assert_eq!(counter("serve.shed_total") - shed_before, load.stats.shed);
    assert_eq!(counter("serve.requests") - requests_before, 6 * 3);

    // the echoed trace ids join 1:1 against the ok records
    let mut logged_ids: Vec<u64> = ok.iter().map(|r| r.trace_id).collect();
    let mut echoed = load.trace_ids.clone();
    logged_ids.sort_unstable();
    echoed.sort_unstable();
    assert_eq!(logged_ids, echoed, "trace ids must join log ↔ client");

    // ok records have a full waterfall; shed records never ran
    for record in &ok {
        assert_eq!(record.replica, Some(0));
        assert!(record.batch_size.is_some());
        assert!(record.exec_ns > 0, "ok record without an exec stage");
        assert!(record.total_ns >= record.exec_ns);
    }
    for record in &shed {
        assert_eq!(record.replica, None);
        assert_eq!(record.exec_ns, 0);
    }

    let summary = view.summary.expect("closed log has a summary");
    assert_eq!(summary.records, view.records.len() as u64);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.write_errors, 0);
    assert_eq!(summary.ok, ok.len() as u64);
    assert_eq!(summary.shed, shed.len() as u64);
    assert!(!summary.exemplars.is_empty(), "exemplars retained");
    std::fs::remove_file(&path).ok();
}

/// A request arriving after the queue closed gets the typed
/// "shutting down" refusal plus a `goodbye-refused` record, while the
/// in-flight request admitted before the close is still answered and
/// logged `ok` — and the connection still ends with a goodbye frame.
#[test]
fn shutdown_refusals_produce_goodbye_refused_records() {
    let _guard = test_lock();
    let path = log_path("goodbye");
    let model = Arc::new(EchoModel::new(Duration::from_millis(120)));
    let mut server = Server::bind_logged(
        "127.0.0.1:0",
        Arc::clone(&model) as Arc<dyn ServeModel>,
        ServeConfig {
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            replicas: 1,
            conn_workers: 1,
            queue_cap: 4,
            overload: OverloadPolicy::Reject,
        },
        Some(AccessLog::create(&path, 4).unwrap()),
    )
    .unwrap();
    let addr = server.local_addr();
    let input = vec![3.0f32; model.input_len()];

    // pipeline on a raw socket: request 1 occupies the executor for
    // 120ms, a second connection requests shutdown, then request 2 lands
    // on the closed queue
    let mut raw = TcpStream::connect(addr).unwrap();
    write_raw_frame(
        &mut raw,
        &infer_payload(KIND_INFER | FLAG_TRACED, 1, &input),
    );
    std::thread::sleep(Duration::from_millis(40));
    Client::connect(addr).unwrap().shutdown_server().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    write_raw_frame(
        &mut raw,
        &infer_payload(KIND_INFER | FLAG_TRACED, 2, &input),
    );

    // both requests resolve (in either order), then the goodbye
    let mut by_id = std::collections::HashMap::new();
    for _ in 0..2 {
        let response = read_raw_frame(&mut raw);
        let id = u64::from_le_bytes(response[1..9].try_into().unwrap());
        by_id.insert(id, response);
    }
    assert_eq!(by_id[&1][0], STATUS_OK, "admitted request must be answered");
    assert_eq!(by_id[&2][0], STATUS_ERR, "post-close request is refused");
    let goodbye = read_raw_frame(&mut raw);
    assert_eq!(goodbye[0], STATUS_GOODBYE);
    server.wait();

    let view = lifecycle::read_records(&path).unwrap();
    assert_eq!(view.malformed, 0);
    assert_eq!(view.records.len(), 2);
    let ok = records_with(&view.records, lifecycle::OUTCOME_OK);
    let refused = records_with(&view.records, lifecycle::OUTCOME_GOODBYE_REFUSED);
    assert_eq!((ok.len(), refused.len()), (1, 1));
    // the refusal is a complete record: identity, outcome, zero exec
    assert_eq!(refused[0].conn_id, ok[0].conn_id, "same connection");
    assert_eq!(refused[0].exec_ns, 0);
    assert!(refused[0].trace_id > 0);
    let summary = view.summary.expect("closed log has a summary");
    assert_eq!(summary.records, 2);
    assert_eq!(summary.goodbye_refused, 1);
    assert_eq!(summary.ok, 1);
    std::fs::remove_file(&path).ok();
}
