//! Bit-packed integer GEMM kernels — the datapath the quantized engine
//! actually executes, as opposed to the `adq-pim` crate's cycle-accounting
//! simulation.
//!
//! All three kernels compute the same quantity: for an activation matrix
//! of integer codes `A = [M, K]` and a weight matrix of integer codes
//! `W = [O, K]` (both row-major), the integer products
//!
//! ```text
//! acc[m, o] = Σ_k A[m, k] · W[o, k]
//! ```
//!
//! which is the only term of the affine-quantized dot product that needs
//! wide arithmetic (see [`crate::compile`] for the requantization chain
//! that turns `acc` back into real values). Codes are unsigned
//! (`0 ..= 2^k − 1`, the convention of [`adq_quant::Quantizer`]), so the
//! kernels are unsigned-integer GEMMs:
//!
//! * **int8** ([`Container::U8`]) — one code per byte, `i32` partial
//!   accumulation in bounded chunks widened into `i64` totals,
//! * **int16** ([`Container::U16`]) — one code per `u16`, `u64`/`i64`
//!   accumulation,
//! * **int4** ([`Container::Nib`]) — two codes per byte (low nibble =
//!   even `k`), `i32` accumulation; 2-bit layers ride this path too
//!   (their codes fit a nibble).
//!
//! Every kernel has a scalar reference body and a runtime-AVX2 body
//! (`_mm256_maddubs_epi16` / `_mm256_madd_epi16` / `_mm256_mul_epu32`
//! inner loops). Integer arithmetic is exact, and the accumulation
//! bounds below rule out overflow in both bodies, so vector and scalar
//! results are **bit-identical** — enforced element-for-element by the
//! proptests in `tests/qgemm_exactness.rs` at every tail length.

use adq_quant::{Encoder, Quantizer};

/// Per-chunk cap on `i32` partial accumulation in the u8 kernels.
///
/// A u8·u8 product is at most `255² = 65 025`; a chunk of 16 384 such
/// products tops out at `1.07e9 < i32::MAX`, and the AVX2 body's worst
/// lane (one eighth of the chunk's pair-sums) stays far below that.
const I32_CHUNK: usize = 16_384;

/// Storage container a layer's codes are packed into, chosen from the
/// widest code either operand can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Container {
    /// Two 4-bit codes per byte (low nibble first). 2-bit codes ride here.
    Nib,
    /// One code per byte.
    U8,
    /// One code per `u16`.
    U16,
}

impl Container {
    /// The narrowest container that holds codes up to `max_code`.
    pub fn for_max_code(max_code: u64) -> Container {
        if max_code <= 0xF {
            Container::Nib
        } else if max_code <= 0xFF {
            Container::U8
        } else {
            Container::U16
        }
    }

    /// The wider of two containers (operands must share one).
    pub fn join(self, other: Container) -> Container {
        use Container::*;
        match (self, other) {
            (U16, _) | (_, U16) => U16,
            (U8, _) | (_, U8) => U8,
            _ => Nib,
        }
    }

    /// Bytes one row of `k` codes occupies in this container.
    pub fn row_bytes(self, k: usize) -> usize {
        match self {
            Container::Nib => k.div_ceil(2),
            Container::U8 => k,
            Container::U16 => 2 * k,
        }
    }
}

/// Code storage for one packed operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Codes {
    /// Nibble-packed rows, `row_bytes = ceil(k / 2)` each.
    Nib(Vec<u8>),
    /// Byte rows, `k` each.
    U8(Vec<u8>),
    /// `u16` rows, `k` each.
    U16(Vec<u16>),
}

/// A row-major matrix of integer codes plus its per-row code sums — one
/// operand of the integer GEMM. Weights are packed once at compile time;
/// activations are packed per batch.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMatrix {
    rows: usize,
    k: usize,
    codes: Codes,
    /// `Σ_k codes[row, k]` per row — the cheap side sums the affine
    /// requantization correction needs.
    row_sums: Vec<u64>,
}

impl PackedMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical row length (codes per row, before packing).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The container codes are stored in.
    pub fn container(&self) -> Container {
        match self.codes {
            Codes::Nib(_) => Container::Nib,
            Codes::U8(_) => Container::U8,
            Codes::U16(_) => Container::U16,
        }
    }

    /// Per-row code sums (`Σ c` per row).
    pub fn row_sums(&self) -> &[u64] {
        &self.row_sums
    }

    /// Approximate packed size in bytes (codes only).
    pub fn packed_bytes(&self) -> usize {
        self.container().row_bytes(self.k) * self.rows
    }

    /// Packs a row-major `[rows, k]` matrix of real values into integer
    /// codes under `quantizer`, into `container` storage.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * k` or the quantizer's codes
    /// overflow the container.
    pub fn pack_rows(
        values: &[f32],
        rows: usize,
        k: usize,
        quantizer: &Quantizer,
        container: Container,
    ) -> PackedMatrix {
        assert_eq!(values.len(), rows * k, "values must be [rows, k]");
        assert_container_fits(quantizer, container);
        let enc = quantizer.encoder();
        let mut row_sums = vec![0u64; rows];
        let codes = match container {
            Container::U8 => {
                let mut out = vec![0u8; rows * k];
                for ((src, dst), sum) in values
                    .chunks_exact(k.max(1))
                    .zip(out.chunks_exact_mut(k.max(1)))
                    .zip(&mut row_sums)
                {
                    pack_row_u8(src, dst, &enc, sum);
                }
                Codes::U8(out)
            }
            Container::U16 => {
                let mut out = vec![0u16; rows * k];
                for ((src, dst), sum) in values
                    .chunks_exact(k.max(1))
                    .zip(out.chunks_exact_mut(k.max(1)))
                    .zip(&mut row_sums)
                {
                    pack_row_u16(src, dst, &enc, sum);
                }
                Codes::U16(out)
            }
            Container::Nib => {
                let rb = Container::Nib.row_bytes(k);
                let mut out = vec![0u8; rows * rb];
                for ((src, dst), sum) in values
                    .chunks_exact(k.max(1))
                    .zip(out.chunks_exact_mut(rb.max(1)))
                    .zip(&mut row_sums)
                {
                    pack_row_nib(src, dst, &enc, sum);
                }
                Codes::Nib(out)
            }
        };
        PackedMatrix {
            rows,
            k,
            codes,
            row_sums,
        }
    }

    /// Packs a `[k, m]` column-matrix of real values (the layout
    /// [`adq_tensor::im2col`] produces: one column per output pixel) into
    /// the transposed `[m, k]` code matrix the GEMM wants.
    ///
    /// The transpose runs in cache-friendly tiles; the quantization
    /// arithmetic is element-for-element the same as
    /// [`Quantizer::quantize`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != k * m` or the quantizer's codes
    /// overflow the container.
    pub fn pack_cols(
        values: &[f32],
        k: usize,
        m: usize,
        quantizer: &Quantizer,
        container: Container,
    ) -> PackedMatrix {
        assert_eq!(values.len(), k * m, "values must be [k, m]");
        assert_container_fits(quantizer, container);
        let enc = quantizer.encoder();
        let mut row_sums = vec![0u64; m];
        // Two passes: encode in the source's contiguous `[k, m]` order
        // (one sequential sweep over the floats — this is the hot
        // per-batch cost of the whole engine), then transpose the small
        // integer codes in cache-friendly tiles. Transposing codes
        // instead of floats keeps the strided traffic at one or two
        // bytes per element.
        let codes = match container {
            Container::U16 => {
                let staged = encode_cols_u16(values, m, &enc, &mut row_sums);
                let mut out = vec![0u16; m * k];
                transpose_u16(&staged, k, m, &mut out);
                Codes::U16(out)
            }
            Container::U8 => {
                let staged = encode_cols_u8(values, m, &enc, &mut row_sums);
                let mut out = vec![0u8; m * k];
                transpose_u8(&staged, k, m, &mut out);
                Codes::U8(out)
            }
            Container::Nib => {
                let staged = encode_cols_u8(values, m, &enc, &mut row_sums);
                let rb = Container::Nib.row_bytes(k);
                let mut out = vec![0u8; m * rb];
                transpose_nib(&staged, k, m, rb, &mut out);
                Codes::Nib(out)
            }
        };
        PackedMatrix {
            rows: m,
            k,
            codes,
            row_sums,
        }
    }

    /// Packs already-quantized codes (row-major `[rows, k]`, one code per
    /// `u16`) into container storage — the integer twin of
    /// [`PackedMatrix::pack_rows`] for the fused requantization chain,
    /// where layers exchange codes and no float quantization happens
    /// between them.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != rows * k`; debug-asserts every code fits
    /// the container.
    pub fn from_codes(codes: &[u16], rows: usize, k: usize, container: Container) -> PackedMatrix {
        assert_eq!(codes.len(), rows * k, "codes must be [rows, k]");
        let mut row_sums = vec![0u64; rows];
        let packed = match container {
            Container::U8 => {
                let mut out = vec![0u8; rows * k];
                for ((src, dst), sum) in codes
                    .chunks_exact(k.max(1))
                    .zip(out.chunks_exact_mut(k.max(1)))
                    .zip(&mut row_sums)
                {
                    for (&c, d) in src.iter().zip(dst) {
                        debug_assert!(c <= 0xFF, "code {c} overflows U8");
                        *sum += u64::from(c);
                        *d = c as u8;
                    }
                }
                Codes::U8(out)
            }
            Container::U16 => {
                for (src, sum) in codes.chunks_exact(k.max(1)).zip(&mut row_sums) {
                    for &c in src {
                        *sum += u64::from(c);
                    }
                }
                Codes::U16(codes.to_vec())
            }
            Container::Nib => {
                let rb = Container::Nib.row_bytes(k);
                let mut out = vec![0u8; rows * rb];
                for ((src, dst), sum) in codes
                    .chunks_exact(k.max(1))
                    .zip(out.chunks_exact_mut(rb.max(1)))
                    .zip(&mut row_sums)
                {
                    for (i, &c) in src.iter().enumerate() {
                        debug_assert!(c <= 0xF, "code {c} overflows Nib");
                        *sum += u64::from(c);
                        dst[i / 2] |= (c as u8) << ((i & 1) * 4);
                    }
                }
                Codes::Nib(out)
            }
        };
        PackedMatrix {
            rows,
            k,
            codes: packed,
            row_sums,
        }
    }
}

/// Tile edge for the code transposes: 64×64 byte tiles sit well inside
/// L1 alongside the staging rows they read.
const TRANSPOSE_TILE: usize = 64;

/// Encodes a `[k, m]` float matrix in source order into u8 codes,
/// accumulating the per-column code sums.
fn encode_cols_u8(values: &[f32], m: usize, enc: &Encoder, row_sums: &mut [u64]) -> Vec<u8> {
    let mut staged = vec![0u8; values.len()];
    for (src, dst) in values
        .chunks_exact(m.max(1))
        .zip(staged.chunks_exact_mut(m.max(1)))
    {
        for ((&x, d), sum) in src.iter().zip(dst).zip(row_sums.iter_mut()) {
            let code = enc.encode(x);
            *sum += code;
            *d = code as u8;
        }
    }
    staged
}

/// u16 twin of [`encode_cols_u8`].
fn encode_cols_u16(values: &[f32], m: usize, enc: &Encoder, row_sums: &mut [u64]) -> Vec<u16> {
    let mut staged = vec![0u16; values.len()];
    for (src, dst) in values
        .chunks_exact(m.max(1))
        .zip(staged.chunks_exact_mut(m.max(1)))
    {
        for ((&x, d), sum) in src.iter().zip(dst).zip(row_sums.iter_mut()) {
            let code = enc.encode(x);
            *sum += code;
            *d = code as u16;
        }
    }
    staged
}

/// Tiled `[k, m]` → `[m, k]` byte transpose.
fn transpose_u8(staged: &[u8], k: usize, m: usize, out: &mut [u8]) {
    for k0 in (0..k).step_by(TRANSPOSE_TILE) {
        let k1 = (k0 + TRANSPOSE_TILE).min(k);
        for m0 in (0..m).step_by(TRANSPOSE_TILE) {
            let m1 = (m0 + TRANSPOSE_TILE).min(m);
            for mm in m0..m1 {
                let dst = &mut out[mm * k..mm * k + k];
                for kk in k0..k1 {
                    dst[kk] = staged[kk * m + mm];
                }
            }
        }
    }
}

/// u16 twin of [`transpose_u8`].
fn transpose_u16(staged: &[u16], k: usize, m: usize, out: &mut [u16]) {
    for k0 in (0..k).step_by(TRANSPOSE_TILE) {
        let k1 = (k0 + TRANSPOSE_TILE).min(k);
        for m0 in (0..m).step_by(TRANSPOSE_TILE) {
            let m1 = (m0 + TRANSPOSE_TILE).min(m);
            for mm in m0..m1 {
                let dst = &mut out[mm * k..mm * k + k];
                for kk in k0..k1 {
                    dst[kk] = staged[kk * m + mm];
                }
            }
        }
    }
}

/// Tiled transpose straight into nibble-packed rows (low nibble = even
/// `k`, trailing pad nibble left zero).
fn transpose_nib(staged: &[u8], k: usize, m: usize, rb: usize, out: &mut [u8]) {
    for k0 in (0..k).step_by(TRANSPOSE_TILE) {
        let k1 = (k0 + TRANSPOSE_TILE).min(k);
        for m0 in (0..m).step_by(TRANSPOSE_TILE) {
            let m1 = (m0 + TRANSPOSE_TILE).min(m);
            for mm in m0..m1 {
                let dst = &mut out[mm * rb..(mm + 1) * rb];
                for kk in k0..k1 {
                    dst[kk / 2] |= staged[kk * m + mm] << ((kk & 1) * 4);
                }
            }
        }
    }
}

fn assert_container_fits(quantizer: &Quantizer, container: Container) {
    let max_code = quantizer.bits().max_code();
    let cap = match container {
        Container::Nib => 0xF,
        Container::U8 => 0xFF,
        Container::U16 => 0xFFFF,
    };
    assert!(
        max_code <= cap,
        "{}-bit codes (max {max_code}) overflow {container:?}",
        quantizer.bits().get()
    );
}

fn pack_row_u8(src: &[f32], dst: &mut [u8], enc: &Encoder, sum: &mut u64) {
    for (d, &x) in dst.iter_mut().zip(src) {
        let code = enc.encode(x);
        *sum += code;
        *d = code as u8;
    }
}

fn pack_row_u16(src: &[f32], dst: &mut [u16], enc: &Encoder, sum: &mut u64) {
    for (d, &x) in dst.iter_mut().zip(src) {
        let code = enc.encode(x);
        *sum += code;
        *d = code as u16;
    }
}

fn pack_row_nib(src: &[f32], dst: &mut [u8], enc: &Encoder, sum: &mut u64) {
    for (i, &x) in src.iter().enumerate() {
        let code = enc.encode(x);
        *sum += code;
        dst[i / 2] |= (code as u8) << ((i & 1) * 4);
    }
}

/// Runs the integer GEMM: for every activation row `m` and weight row
/// `o`, computes `acc = Σ_k A[m, k]·W[o, k]` and calls
/// `emit(m, o, acc)`.
///
/// Both operands must share a container and a `k`; the caller (see
/// [`crate::compile`]) chooses the container as the join of the two
/// quantizers' widths.
///
/// # Panics
///
/// Panics if containers or `k` mismatch.
pub fn qgemm(acts: &PackedMatrix, weights: &PackedMatrix, mut emit: impl FnMut(usize, usize, i64)) {
    assert_eq!(acts.k, weights.k, "operand k mismatch");
    assert_eq!(
        acts.container(),
        weights.container(),
        "operand container mismatch"
    );
    let k = acts.k;
    match (&acts.codes, &weights.codes) {
        (Codes::U8(a), Codes::U8(w)) => {
            // The u8 path carries the serving workload, so it is blocked
            // over 4 weight rows: one activation load feeds 4 multiply
            // accumulators, and the per-dot horizontal reduction cost is
            // paid once per block instead of once per output. Integer
            // sums are order-independent, so the result stays bit-equal
            // to the plain per-output dot.
            for m in 0..acts.rows {
                let a_row = &a[m * k..(m + 1) * k];
                let blocks = weights.rows / 4 * 4;
                for o in (0..blocks).step_by(4) {
                    let dots = dot4_u8(
                        a_row,
                        [
                            &w[o * k..(o + 1) * k],
                            &w[(o + 1) * k..(o + 2) * k],
                            &w[(o + 2) * k..(o + 3) * k],
                            &w[(o + 3) * k..(o + 4) * k],
                        ],
                    );
                    for (j, dot) in dots.into_iter().enumerate() {
                        emit(m, o + j, dot);
                    }
                }
                for o in blocks..weights.rows {
                    emit(m, o, dot_u8(a_row, &w[o * k..(o + 1) * k]));
                }
            }
        }
        (Codes::U16(a), Codes::U16(w)) => {
            for m in 0..acts.rows {
                let a_row = &a[m * k..(m + 1) * k];
                for o in 0..weights.rows {
                    emit(m, o, dot_u16(a_row, &w[o * k..(o + 1) * k]));
                }
            }
        }
        (Codes::Nib(a), Codes::Nib(w)) => {
            let rb = Container::Nib.row_bytes(k);
            for m in 0..acts.rows {
                let a_row = &a[m * rb..(m + 1) * rb];
                for o in 0..weights.rows {
                    emit(m, o, dot_nib(a_row, &w[o * rb..(o + 1) * rb]));
                }
            }
        }
        _ => unreachable!("container mismatch is asserted above"),
    }
}

/// Runtime AVX2 detection, resolved once per process.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

/// u8·u8 dot product via the widest available path.
pub fn dot_u8(a: &[u8], w: &[u8]) -> i64 {
    debug_assert_eq!(a.len(), w.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: the AVX2 feature was detected at runtime.
        return unsafe { dot_u8_avx2(a, w) };
    }
    dot_u8_reference(a, w)
}

/// Scalar u8 reference: `i32` partials over bounded chunks, `i64` total.
pub fn dot_u8_reference(a: &[u8], w: &[u8]) -> i64 {
    let mut total = 0i64;
    for (ac, wc) in a.chunks(I32_CHUNK).zip(w.chunks(I32_CHUNK)) {
        let mut acc = 0i32;
        for (&x, &y) in ac.iter().zip(wc) {
            acc += i32::from(x) * i32::from(y);
        }
        total += i64::from(acc);
    }
    total
}

/// AVX2 u8 dot: 16 codes per step, widened to `i16` lanes and pair-summed
/// into `i32` lanes with `_mm256_madd_epi16` (no saturation: products are
/// at most `255²` and pair sums at most `2·255²`, far inside `i16`-pair ×
/// `i32` headroom given [`I32_CHUNK`]).
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_u8_avx2(a: &[u8], w: &[u8]) -> i64 {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_cvtepu8_epi16, _mm256_madd_epi16,
        _mm256_setzero_si256, _mm256_storeu_si256, _mm_loadu_si128,
    };
    let mut total = 0i64;
    for (ac, wc) in a.chunks(I32_CHUNK).zip(w.chunks(I32_CHUNK)) {
        let mut acc = _mm256_setzero_si256();
        let mut ai = ac.chunks_exact(16);
        let mut wi = wc.chunks_exact(16);
        for (aq, wq) in (&mut ai).zip(&mut wi) {
            let av = _mm256_cvtepu8_epi16(_mm_loadu_si128(aq.as_ptr() as *const __m128i));
            let wv = _mm256_cvtepu8_epi16(_mm_loadu_si128(wq.as_ptr() as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, wv));
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        total += lanes.iter().map(|&v| i64::from(v)).sum::<i64>();
        total += dot_u8_reference(ai.remainder(), wi.remainder());
    }
    total
}

/// Four u8·u8 dot products sharing one activation row — the blocked
/// inner kernel of the u8 GEMM. Bit-equal to four [`dot_u8`] calls.
pub fn dot4_u8(a: &[u8], w: [&[u8]; 4]) -> [i64; 4] {
    for row in &w {
        debug_assert_eq!(a.len(), row.len());
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: the AVX2 feature was detected at runtime.
        return unsafe { dot4_u8_avx2(a, w) };
    }
    w.map(|row| dot_u8_reference(a, row))
}

/// AVX2 blocked u8 kernel: per 16 activation codes, one widening load is
/// multiply-accumulated against 4 weight rows into 4 independent `i32`
/// lane accumulators (same per-chunk overflow bound as [`dot_u8_avx2`]),
/// reduced once per [`I32_CHUNK`].
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2. All four weight rows
/// must be at least as long as `a`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot4_u8_avx2(a: &[u8], w: [&[u8]; 4]) -> [i64; 4] {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi32, _mm256_cvtepu8_epi16, _mm256_madd_epi16,
        _mm256_setzero_si256, _mm256_storeu_si256, _mm_loadu_si128,
    };
    let mut totals = [0i64; 4];
    let mut start = 0;
    while start < a.len() {
        let end = (start + I32_CHUNK).min(a.len());
        let ac = &a[start..end];
        let mut acc = [_mm256_setzero_si256(); 4];
        let mut ai = ac.chunks_exact(16);
        let mut offset = 0;
        for aq in &mut ai {
            let av = _mm256_cvtepu8_epi16(_mm_loadu_si128(aq.as_ptr() as *const __m128i));
            for j in 0..4 {
                let wq = w[j].as_ptr().add(start + offset) as *const __m128i;
                let wv = _mm256_cvtepu8_epi16(_mm_loadu_si128(wq));
                acc[j] = _mm256_add_epi32(acc[j], _mm256_madd_epi16(av, wv));
            }
            offset += 16;
        }
        let tail = ai.remainder();
        for j in 0..4 {
            let mut lanes = [0i32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc[j]);
            totals[j] += lanes.iter().map(|&v| i64::from(v)).sum::<i64>();
            totals[j] += dot_u8_reference(tail, &w[j][start + offset..end]);
        }
        start = end;
    }
    totals
}

/// u16·u16 dot product via the widest available path.
pub fn dot_u16(a: &[u16], w: &[u16]) -> i64 {
    debug_assert_eq!(a.len(), w.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: the AVX2 feature was detected at runtime.
        return unsafe { dot_u16_avx2(a, w) };
    }
    dot_u16_reference(a, w)
}

/// Scalar u16 reference: products up to `2³²` accumulate exactly in `u64`.
pub fn dot_u16_reference(a: &[u16], w: &[u16]) -> i64 {
    let mut acc = 0u64;
    for (&x, &y) in a.iter().zip(w) {
        acc += u64::from(x) * u64::from(y);
    }
    acc as i64
}

/// AVX2 u16 dot: 8 codes per step, widened to 32-bit lanes, multiplied
/// with `_mm256_mul_epu32` on even/odd lanes into 64-bit accumulators.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_u16_avx2(a: &[u16], w: &[u16]) -> i64 {
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi64, _mm256_cvtepu16_epi32, _mm256_mul_epu32,
        _mm256_setzero_si256, _mm256_srli_epi64, _mm256_storeu_si256, _mm_loadu_si128,
    };
    let mut acc = _mm256_setzero_si256();
    let mut ai = a.chunks_exact(8);
    let mut wi = w.chunks_exact(8);
    for (aq, wq) in (&mut ai).zip(&mut wi) {
        let av = _mm256_cvtepu16_epi32(_mm_loadu_si128(aq.as_ptr() as *const __m128i));
        let wv = _mm256_cvtepu16_epi32(_mm_loadu_si128(wq.as_ptr() as *const __m128i));
        let even = _mm256_mul_epu32(av, wv);
        let odd = _mm256_mul_epu32(_mm256_srli_epi64::<32>(av), _mm256_srli_epi64::<32>(wv));
        acc = _mm256_add_epi64(acc, _mm256_add_epi64(even, odd));
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    lanes.iter().sum::<u64>() as i64 + dot_u16_reference(ai.remainder(), wi.remainder())
}

/// Nibble-packed dot product via the widest available path. Both rows
/// must be packed with low nibble = even `k`; a trailing half-byte pad
/// is zero in both operands and contributes nothing.
pub fn dot_nib(a: &[u8], w: &[u8]) -> i64 {
    debug_assert_eq!(a.len(), w.len());
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: the AVX2 feature was detected at runtime.
        return unsafe { dot_nib_avx2(a, w) };
    }
    dot_nib_reference(a, w)
}

/// Scalar nibble reference: products are at most `15² = 225`, so an
/// `i32` accumulator is exact for any realistic row (overflow would
/// need > 4.7M taps; layer fan-ins are thousands).
pub fn dot_nib_reference(a: &[u8], w: &[u8]) -> i64 {
    debug_assert!(
        a.len() < (1 << 22),
        "nibble rows capped well below i32 overflow"
    );
    let mut acc = 0i32;
    for (&ab, &wb) in a.iter().zip(w) {
        acc += i32::from(ab & 0xF) * i32::from(wb & 0xF) + i32::from(ab >> 4) * i32::from(wb >> 4);
    }
    i64::from(acc)
}

/// AVX2 nibble dot: 64 codes (32 packed bytes) per step. Nibbles are
/// masked apart and multiplied with `_mm256_maddubs_epi16` (u8 × "i8"
/// — nibble values are 0..=15, so the signed operand never goes
/// negative and pair sums top out at `2·225 = 450`, far from i16
/// saturation), then pair-summed into `i32` lanes.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_nib_avx2(a: &[u8], w: &[u8]) -> i64 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_loadu_si256, _mm256_madd_epi16,
        _mm256_maddubs_epi16, _mm256_set1_epi16, _mm256_set1_epi8, _mm256_setzero_si256,
        _mm256_srli_epi16, _mm256_storeu_si256,
    };
    let lo_mask = _mm256_set1_epi8(0x0F);
    let ones = _mm256_set1_epi16(1);
    let mut acc = _mm256_setzero_si256();
    let mut ai = a.chunks_exact(32);
    let mut wi = w.chunks_exact(32);
    for (aq, wq) in (&mut ai).zip(&mut wi) {
        let av = _mm256_loadu_si256(aq.as_ptr() as *const __m256i);
        let wv = _mm256_loadu_si256(wq.as_ptr() as *const __m256i);
        let alo = _mm256_and_si256(av, lo_mask);
        let wlo = _mm256_and_si256(wv, lo_mask);
        let ahi = _mm256_and_si256(_mm256_srli_epi16::<4>(av), lo_mask);
        let whi = _mm256_and_si256(_mm256_srli_epi16::<4>(wv), lo_mask);
        let plo = _mm256_maddubs_epi16(alo, wlo);
        let phi = _mm256_maddubs_epi16(ahi, whi);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(plo, ones));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(phi, ones));
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    lanes.iter().map(|&v| i64::from(v)).sum::<i64>()
        + dot_nib_reference(ai.remainder(), wi.remainder())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adq_quant::{BitWidth, QuantRange};

    fn lcg_codes(len: usize, max: u64, seed: u64) -> Vec<u64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % (max + 1)
            })
            .collect()
    }

    fn reference_dot(a: &[u64], w: &[u64]) -> i64 {
        a.iter().zip(w).map(|(&x, &y)| (x * y) as i64).sum()
    }

    #[test]
    fn u8_paths_match_wide_reference_at_every_tail() {
        for len in (0..40).chain([255, 1024, 16_385]) {
            let a = lcg_codes(len, 255, 7);
            let w = lcg_codes(len, 255, 13);
            let a8: Vec<u8> = a.iter().map(|&c| c as u8).collect();
            let w8: Vec<u8> = w.iter().map(|&c| c as u8).collect();
            let want = reference_dot(&a, &w);
            assert_eq!(dot_u8_reference(&a8, &w8), want, "len {len}");
            assert_eq!(dot_u8(&a8, &w8), want, "len {len}");
        }
    }

    #[test]
    fn blocked_u8_kernel_matches_four_plain_dots() {
        for len in (0..40).chain([255, 1024, I32_CHUNK + 17]) {
            let a: Vec<u8> = lcg_codes(len, 255, 23).iter().map(|&c| c as u8).collect();
            let rows: Vec<Vec<u8>> = (0..4)
                .map(|r| {
                    lcg_codes(len, 255, 29 + r)
                        .iter()
                        .map(|&c| c as u8)
                        .collect()
                })
                .collect();
            let got = dot4_u8(&a, [&rows[0], &rows[1], &rows[2], &rows[3]]);
            for j in 0..4 {
                assert_eq!(got[j], dot_u8_reference(&a, &rows[j]), "len {len} row {j}");
            }
        }
        // all-max rows across the chunk straddle
        let len = I32_CHUNK + 5;
        let maxed = vec![255u8; len];
        let got = dot4_u8(&maxed, [&maxed, &maxed, &maxed, &maxed]);
        assert_eq!(got, [len as i64 * 255 * 255; 4]);
    }

    #[test]
    fn u16_paths_match_wide_reference_at_every_tail() {
        for len in (0..24).chain([63, 500]) {
            let a = lcg_codes(len, 65_535, 3);
            let w = lcg_codes(len, 65_535, 5);
            let a16: Vec<u16> = a.iter().map(|&c| c as u16).collect();
            let w16: Vec<u16> = w.iter().map(|&c| c as u16).collect();
            let want = reference_dot(&a, &w);
            assert_eq!(dot_u16_reference(&a16, &w16), want, "len {len}");
            assert_eq!(dot_u16(&a16, &w16), want, "len {len}");
        }
    }

    fn pack_nibbles(codes: &[u64]) -> Vec<u8> {
        let mut out = vec![0u8; codes.len().div_ceil(2)];
        for (i, &c) in codes.iter().enumerate() {
            out[i / 2] |= (c as u8) << ((i & 1) * 4);
        }
        out
    }

    #[test]
    fn nib_paths_match_wide_reference_at_every_tail() {
        for len in (0..80).chain([129, 1000]) {
            let a = lcg_codes(len, 15, 11);
            let w = lcg_codes(len, 15, 17);
            let want = reference_dot(&a, &w);
            let ap = pack_nibbles(&a);
            let wp = pack_nibbles(&w);
            assert_eq!(dot_nib_reference(&ap, &wp), want, "len {len}");
            assert_eq!(dot_nib(&ap, &wp), want, "len {len}");
        }
    }

    #[test]
    fn max_code_rows_do_not_overflow() {
        // all-255 rows at a length straddling the chunk boundary
        let len = I32_CHUNK + 17;
        let a8 = vec![255u8; len];
        assert_eq!(dot_u8(&a8, &a8), len as i64 * 255 * 255);
        let a16 = vec![65_535u16; 100];
        assert_eq!(dot_u16(&a16, &a16), 100i64 * 65_535 * 65_535);
        let nib = vec![0xFFu8; 64];
        assert_eq!(dot_nib(&nib, &nib), 128 * 225);
    }

    fn q(bits: u32, lo: f32, hi: f32) -> Quantizer {
        Quantizer::new(
            BitWidth::new(bits).unwrap(),
            QuantRange::new(lo, hi).unwrap(),
        )
    }

    #[test]
    fn from_codes_matches_pack_rows_in_every_container() {
        for (bits, container) in [
            (4u32, Container::Nib),
            (8, Container::U8),
            (16, Container::U16),
        ] {
            let quant = q(bits, -1.0, 1.0);
            let values: Vec<f32> = (0..60).map(|i| (i as f32) * 0.07 - 2.0).collect();
            let via_floats = PackedMatrix::pack_rows(&values, 5, 12, &quant, container);
            let codes: Vec<u16> = values.iter().map(|&v| quant.quantize(v) as u16).collect();
            let via_codes = PackedMatrix::from_codes(&codes, 5, 12, container);
            assert_eq!(via_codes.row_sums(), via_floats.row_sums(), "{container:?}");
            let mut lhs = Vec::new();
            let mut rhs = Vec::new();
            qgemm(&via_floats, &via_floats, |m, o, acc| lhs.push((m, o, acc)));
            qgemm(&via_codes, &via_codes, |m, o, acc| rhs.push((m, o, acc)));
            assert_eq!(lhs, rhs, "{container:?}");
        }
    }

    #[test]
    fn pack_rows_matches_per_element_quantize() {
        let quant = q(8, -1.0, 1.0);
        let values: Vec<f32> = (0..24).map(|i| (i as f32) / 10.0 - 1.2).collect();
        let packed = PackedMatrix::pack_rows(&values, 4, 6, &quant, Container::U8);
        let Codes::U8(codes) = &packed.codes else {
            panic!("expected U8")
        };
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(u64::from(codes[i]), quant.quantize(v), "element {i}");
        }
        for row in 0..4 {
            let want: u64 = values[row * 6..(row + 1) * 6]
                .iter()
                .map(|&v| quant.quantize(v))
                .sum();
            assert_eq!(packed.row_sums()[row], want, "row {row}");
        }
    }

    #[test]
    fn pack_cols_is_the_transpose_of_pack_rows() {
        let quant = q(4, -2.0, 2.0);
        let (k, m) = (7, 5);
        let col_major: Vec<f32> = (0..k * m).map(|i| (i as f32 * 0.37).sin()).collect();
        // row-major transpose of the same values
        let mut row_major = vec![0f32; k * m];
        for kk in 0..k {
            for mm in 0..m {
                row_major[mm * k + kk] = col_major[kk * m + mm];
            }
        }
        for container in [Container::Nib, Container::U8, Container::U16] {
            let a = PackedMatrix::pack_cols(&col_major, k, m, &quant, container);
            let b = PackedMatrix::pack_rows(&row_major, m, k, &quant, container);
            assert_eq!(a, b, "{container:?}");
        }
    }

    #[test]
    fn qgemm_matches_wide_reference_across_containers() {
        let (m, o, k) = (5, 4, 33);
        let aq = q(4, -1.0, 1.0);
        let wq = q(8, -0.5, 0.5);
        let acts_f: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.11).cos()).collect();
        let wts_f: Vec<f32> = (0..o * k).map(|i| (i as f32 * 0.07).sin() * 0.5).collect();
        // wide reference from raw codes
        let a_codes: Vec<u64> = acts_f.iter().map(|&v| aq.quantize(v)).collect();
        let w_codes: Vec<u64> = wts_f.iter().map(|&v| wq.quantize(v)).collect();
        let container = Container::for_max_code(aq.bits().max_code())
            .join(Container::for_max_code(wq.bits().max_code()));
        let acts = PackedMatrix::pack_rows(&acts_f, m, k, &aq, container);
        let wts = PackedMatrix::pack_rows(&wts_f, o, k, &wq, container);
        let mut got = vec![0i64; m * o];
        qgemm(&acts, &wts, |mi, oi, acc| got[mi * o + oi] = acc);
        for mi in 0..m {
            for oi in 0..o {
                let want = reference_dot(
                    &a_codes[mi * k..(mi + 1) * k],
                    &w_codes[oi * k..(oi + 1) * k],
                );
                assert_eq!(got[mi * o + oi], want, "m={mi} o={oi}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "container mismatch")]
    fn qgemm_rejects_container_mismatch() {
        let quant = q(4, 0.0, 1.0);
        let a = PackedMatrix::pack_rows(&[0.5; 4], 1, 4, &quant, Container::U8);
        let w = PackedMatrix::pack_rows(&[0.5; 4], 1, 4, &quant, Container::Nib);
        qgemm(&a, &w, |_, _, _| {});
    }

    #[test]
    fn container_join_prefers_wider() {
        assert_eq!(Container::Nib.join(Container::U16), Container::U16);
        assert_eq!(Container::Nib.join(Container::U8), Container::U8);
        assert_eq!(Container::Nib.join(Container::Nib), Container::Nib);
        assert_eq!(Container::for_max_code(3), Container::Nib);
        assert_eq!(Container::for_max_code(255), Container::U8);
        assert_eq!(Container::for_max_code(65_535), Container::U16);
    }
}
