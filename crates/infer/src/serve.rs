//! Dynamic-batching TCP serving front-end for a [`CompiledVgg`].
//!
//! Same std-only networking pattern as `adq-telemetry`'s
//! `MetricsEndpoint`: a [`TcpListener`] owned by an accept thread, one
//! thread per connection, no HTTP library. Connections speak a
//! length-prefixed binary protocol; inference requests from *all*
//! connections funnel into one queue, where a batcher thread coalesces
//! them — up to [`ServeConfig::max_batch`] requests, or whatever has
//! arrived when the oldest request's [`ServeConfig::max_wait`] deadline
//! expires — and runs them through the batched integer kernels in a
//! single [`CompiledVgg::run`] call.
//!
//! ## Wire protocol
//!
//! Every frame is `u32` little-endian payload length, then the payload.
//! Request payload: `[kind: u8][id: u64 LE][n: u32 LE][n × f32 LE]`
//! with kinds `1` = infer (`n` = flattened input length), `2` = ping,
//! `3` = shutdown. Response payload: `[status: u8][id: u64 LE]
//! [n: u32 LE][n × f32 LE]`; status `0` carries the logits, status `1`
//! carries a UTF-8 error message in place of the floats.
//!
//! ## Observability
//!
//! The batcher publishes `serve.queue_depth` and `serve.inflight` gauges,
//! `serve.batch_size`, `serve.latency_ns` (enqueue → response ready) and
//! `serve.batch_run_ns` histograms, and `serve.requests` / `serve.errors`
//! counters through the global [`adq_telemetry::metrics`] registry — so a
//! `MetricsEndpoint` bound in the same process exposes them to Prometheus
//! and `adq-watch --scrape` with no extra wiring.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adq_telemetry::metrics;
use adq_telemetry::span;
use adq_tensor::Tensor;

use crate::compile::CompiledVgg;

/// Request kind: run inference on one flattened image.
const KIND_INFER: u8 = 1;
/// Request kind: liveness check, echoes an empty OK.
const KIND_PING: u8 = 2;
/// Request kind: stop the server after draining the queue.
const KIND_SHUTDOWN: u8 = 3;

/// Response status: success, payload carries logits.
const STATUS_OK: u8 = 0;
/// Response status: failure, payload carries a UTF-8 message.
const STATUS_ERR: u8 = 1;

/// Upper bound on accepted frame payloads (guards the length prefix).
const MAX_FRAME: usize = 16 << 20;

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Most requests coalesced into one model invocation.
    pub max_batch: usize,
    /// Longest the oldest queued request waits for company.
    pub max_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // Concurrent closed-loop clients re-enqueue within microseconds of
        // each other (their previous responses complete together), so a
        // short gather window coalesces full batches without taxing the
        // lightly-loaded case a long deadline would.
        Self {
            max_batch: 8,
            max_wait: Duration::from_micros(500),
        }
    }
}

/// One queued inference request.
struct Pending {
    input: Vec<f32>,
    enqueued: Instant,
    resp: std::sync::mpsc::Sender<Result<Vec<f32>, String>>,
}

#[derive(Default)]
struct Queue {
    items: VecDeque<Pending>,
    /// Set once; the batcher drains what is queued, then exits.
    closed: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut q = self.queue.lock().expect("serve queue lock");
        q.closed = true;
        drop(q);
        self.wake.notify_all();
    }
}

/// A running inference server. Dropping without [`Server::shutdown`]
/// leaks the accept thread; tests and binaries should shut down
/// explicitly.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    batcher_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts the
    /// accept loop and the batcher thread.
    ///
    /// # Errors
    ///
    /// Returns any socket-level error from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        model: Arc<CompiledVgg>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_model = Arc::clone(&model);
        let accept_handle = std::thread::Builder::new()
            .name("adq-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_model, accept_shared))
            .expect("spawn accept thread");

        let batcher_shared = Arc::clone(&shared);
        let batcher_handle = std::thread::Builder::new()
            .name("adq-serve-batch".into())
            .spawn(move || batcher_loop(model, batcher_shared, config))
            .expect("spawn batcher thread");

        Ok(Server {
            addr: local,
            shared,
            accept_handle: Some(accept_handle),
            batcher_handle: Some(batcher_handle),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains queued requests, and joins both service
    /// threads.
    pub fn shutdown(&mut self) {
        self.shared.request_shutdown();
        // unblock the accept loop with a wake-up connection
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.batcher_handle.take() {
            let _ = handle.join();
        }
    }

    /// Parks the caller until both service threads exit (a remote
    /// shutdown frame, or a prior [`Server::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.batcher_handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, model: Arc<CompiledVgg>, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        let conn_model = Arc::clone(&model);
        let _ = std::thread::Builder::new()
            .name("adq-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, conn_model, conn_shared);
            });
    }
}

/// Handles one client connection until EOF or shutdown.
fn serve_connection(
    mut stream: TcpStream,
    model: Arc<CompiledVgg>,
    shared: Arc<Shared>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let requests = metrics::global().counter("serve.requests");
    let errors = metrics::global().counter("serve.errors");
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // clean EOF
            Err(e) => return Err(e),
        };
        let Some((kind, id, body)) = parse_request(&payload) else {
            errors.inc();
            write_response(&mut stream, STATUS_ERR, 0, ErrBody("malformed frame"))?;
            continue;
        };
        match kind {
            KIND_PING => write_response(&mut stream, STATUS_OK, id, OkBody(&[]))?,
            KIND_SHUTDOWN => {
                write_response(&mut stream, STATUS_OK, id, OkBody(&[]))?;
                shared.request_shutdown();
                // wake the accept loop so it can observe the flag
                let _ = TcpStream::connect(stream.local_addr()?);
                return Ok(());
            }
            KIND_INFER => {
                requests.inc();
                if body.len() != model.input_len() {
                    errors.inc();
                    write_response(&mut stream, STATUS_ERR, id, ErrBody("bad input length"))?;
                    continue;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    errors.inc();
                    write_response(&mut stream, STATUS_ERR, id, ErrBody("shutting down"))?;
                    continue;
                }
                let (tx, rx) = std::sync::mpsc::channel();
                {
                    let mut q = shared.queue.lock().expect("serve queue lock");
                    if q.closed {
                        errors.inc();
                        write_response(&mut stream, STATUS_ERR, id, ErrBody("shutting down"))?;
                        continue;
                    }
                    q.items.push_back(Pending {
                        input: body,
                        enqueued: Instant::now(),
                        resp: tx,
                    });
                    metrics::global()
                        .gauge("serve.queue_depth")
                        .set(q.items.len() as f64);
                }
                shared.wake.notify_all();
                match rx.recv() {
                    Ok(Ok(logits)) => write_response(&mut stream, STATUS_OK, id, OkBody(&logits))?,
                    Ok(Err(msg)) => {
                        errors.inc();
                        write_response(&mut stream, STATUS_ERR, id, ErrBody(&msg))?;
                    }
                    Err(_) => {
                        errors.inc();
                        write_response(&mut stream, STATUS_ERR, id, ErrBody("server stopped"))?;
                    }
                }
            }
            _ => {
                errors.inc();
                write_response(&mut stream, STATUS_ERR, id, ErrBody("unknown request kind"))?;
            }
        }
    }
}

/// The batcher: waits for work, coalesces up to `max_batch` requests or
/// until the oldest request's deadline, and runs one batched inference.
fn batcher_loop(model: Arc<CompiledVgg>, shared: Arc<Shared>, config: ServeConfig) {
    let max_batch = config.max_batch.max(1);
    let queue_depth = metrics::global().gauge("serve.queue_depth");
    let inflight = metrics::global().gauge("serve.inflight");
    let batch_sizes =
        metrics::global().histogram_with_bounds("serve.batch_size", &[1, 2, 4, 8, 16, 32, 64, 128]);
    let latency = metrics::global().histogram("serve.latency_ns");
    let batch_run = metrics::global().histogram("serve.batch_run_ns");

    loop {
        let batch: Vec<Pending> = {
            let mut q = shared.queue.lock().expect("serve queue lock");
            // wait for the first request (or close)
            while q.items.is_empty() && !q.closed {
                let (guard, _) = shared
                    .wake
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("serve queue lock");
                q = guard;
            }
            if q.items.is_empty() && q.closed {
                return;
            }
            // give the oldest request's deadline a chance to gather company
            let deadline = q.items.front().expect("non-empty").enqueued + config.max_wait;
            while q.items.len() < max_batch && !q.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(q, deadline - now)
                    .expect("serve queue lock");
                q = guard;
            }
            let take = q.items.len().min(max_batch);
            let batch: Vec<Pending> = q.items.drain(..take).collect();
            queue_depth.set(q.items.len() as f64);
            batch
        };
        if batch.is_empty() {
            continue;
        }

        let _span = span::span("serve.batch");
        let started = Instant::now();
        inflight.set(batch.len() as f64);
        batch_sizes.record(batch.len() as u64);

        let (c, hw) = {
            let (c, hw) = model.input_shape();
            (c, hw)
        };
        let mut images = Tensor::zeros(&[batch.len(), c, hw, hw]);
        let input_len = model.input_len();
        for (i, pending) in batch.iter().enumerate() {
            images.data_mut()[i * input_len..(i + 1) * input_len].copy_from_slice(&pending.input);
        }
        let logits = model.run(&images);
        let classes = model.classes();
        let run_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        batch_run.record(run_ns);

        let done = Instant::now();
        for (i, pending) in batch.into_iter().enumerate() {
            let row = logits.data()[i * classes..(i + 1) * classes].to_vec();
            let waited = u64::try_from((done - pending.enqueued).as_nanos()).unwrap_or(u64::MAX);
            latency.record(waited);
            // a disconnected client just drops its response
            let _ = pending.resp.send(Ok(row));
        }
        inflight.set(0.0);
    }
}

// ---- wire helpers -------------------------------------------------------

/// Reads one length-prefixed frame; `None` on clean EOF at a frame
/// boundary.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&u32::to_le_bytes(payload.len() as u32))?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Parses a request payload into `(kind, id, floats)`.
fn parse_request(payload: &[u8]) -> Option<(u8, u64, Vec<f32>)> {
    if payload.len() < 13 {
        return None;
    }
    let kind = payload[0];
    let id = u64::from_le_bytes(payload[1..9].try_into().ok()?);
    let n = u32::from_le_bytes(payload[9..13].try_into().ok()?) as usize;
    let body = &payload[13..];
    if body.len() != n * 4 {
        return None;
    }
    let floats = body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect();
    Some((kind, id, floats))
}

struct OkBody<'a>(&'a [f32]);
struct ErrBody<'a>(&'a str);

trait ResponseBody {
    fn encode(&self, out: &mut Vec<u8>);
}

impl ResponseBody for OkBody<'_> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&u32::to_le_bytes(self.0.len() as u32));
        for v in self.0 {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

impl ResponseBody for ErrBody<'_> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&u32::to_le_bytes(0));
        out.extend_from_slice(self.0.as_bytes());
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u8,
    id: u64,
    body: impl ResponseBody,
) -> io::Result<()> {
    let mut payload = Vec::with_capacity(13);
    payload.push(status);
    payload.extend_from_slice(&id.to_le_bytes());
    body.encode(&mut payload);
    write_frame(stream, &payload)
}

// ---- client -------------------------------------------------------------

/// A blocking client for the serving protocol.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns socket-level connect errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 0 })
    }

    fn request(&mut self, kind: u8, input: &[f32]) -> io::Result<Result<Vec<f32>, String>> {
        self.next_id += 1;
        let id = self.next_id;
        let mut payload = Vec::with_capacity(13 + input.len() * 4);
        payload.push(kind);
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(&u32::to_le_bytes(input.len() as u32));
        for v in input {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        write_frame(&mut self.stream, &payload)?;
        let response = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })?;
        if response.len() < 13 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "short response frame",
            ));
        }
        let status = response[0];
        let got_id = u64::from_le_bytes(response[1..9].try_into().expect("8 bytes"));
        if got_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {got_id} does not match request id {id}"),
            ));
        }
        if status == STATUS_OK {
            let n = u32::from_le_bytes(response[9..13].try_into().expect("4 bytes")) as usize;
            let body = &response[13..];
            if body.len() != n * 4 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response length mismatch",
                ));
            }
            Ok(Ok(body
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
                .collect()))
        } else {
            Ok(Err(String::from_utf8_lossy(&response[13..]).into_owned()))
        }
    }

    /// Runs inference on one flattened image, returning logits or the
    /// server's error message.
    ///
    /// # Errors
    ///
    /// Returns socket-level I/O errors.
    pub fn infer(&mut self, input: &[f32]) -> io::Result<Result<Vec<f32>, String>> {
        self.request(KIND_INFER, input)
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Returns socket-level I/O errors or a server-side refusal.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(KIND_PING, &[])? {
            Ok(_) => Ok(()),
            Err(msg) => Err(io::Error::other(msg)),
        }
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Returns socket-level I/O errors.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.request(KIND_SHUTDOWN, &[])? {
            Ok(_) => Ok(()),
            Err(msg) => Err(io::Error::other(msg)),
        }
    }
}

// ---- load generator -----------------------------------------------------

/// Result of one closed-loop load run.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Concurrency level (number of closed-loop clients).
    pub concurrency: usize,
    /// Requests completed successfully.
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Exact per-request latency quantiles, in nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile latency in nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: u64,
}

impl LoadStats {
    /// Completed requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Mean wall-clock nanoseconds per completed request, from the
    /// server's point of view (`elapsed / requests` — the throughput
    /// metric expressed lower-is-better for `bench_check`).
    pub fn ns_per_request(&self) -> u64 {
        if self.requests == 0 {
            u64::MAX
        } else {
            (self.elapsed.as_nanos() / u128::from(self.requests)) as u64
        }
    }
}

/// Runs `concurrency` closed-loop clients, each issuing
/// `requests_per_client` inference requests back-to-back, and merges the
/// exact latency distribution.
///
/// # Errors
///
/// Returns the first socket-level failure any client hits.
pub fn load_generate(
    addr: SocketAddr,
    concurrency: usize,
    requests_per_client: usize,
    input_len: usize,
) -> io::Result<LoadStats> {
    let started = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..concurrency {
        handles.push(std::thread::spawn(
            move || -> io::Result<(Vec<u64>, u64)> {
                let mut client = Client::connect(addr)?;
                // deterministic per-worker input stream (cheap LCG)
                let mut state = 0x9E3779B97F4A7C15u64 ^ (worker as u64) << 32;
                let mut latencies = Vec::with_capacity(requests_per_client);
                let mut errors = 0u64;
                let mut input = vec![0f32; input_len];
                for _ in 0..requests_per_client {
                    for slot in input.iter_mut() {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        *slot = ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
                    }
                    let sent = Instant::now();
                    match client.infer(&input)? {
                        Ok(_) => latencies
                            .push(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX)),
                        Err(_) => errors += 1,
                    }
                }
                Ok((latencies, errors))
            },
        ));
    }
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for handle in handles {
        let (worker_latencies, worker_errors) = handle
            .join()
            .map_err(|_| io::Error::other("load worker panicked"))??;
        latencies.extend(worker_latencies);
        errors += worker_errors;
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    let mean = if latencies.is_empty() {
        0
    } else {
        (latencies.iter().map(|&v| u128::from(v)).sum::<u128>() / latencies.len() as u128) as u64
    };
    Ok(LoadStats {
        concurrency,
        requests: latencies.len() as u64,
        errors,
        elapsed,
        p50_ns: quantile(0.50),
        p90_ns: quantile(0.90),
        p99_ns: quantile(0.99),
        mean_ns: mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{CompileOptions, CompiledVgg};
    use adq_nn::{QuantModel, Vgg};
    use adq_quant::BitWidth;
    use adq_tensor::init;

    fn compiled_tiny() -> Arc<CompiledVgg> {
        let mut model = Vgg::tiny(3, 8, 4, 99);
        for (i, bits) in [8u32, 4, 8, 8].into_iter().enumerate() {
            model.set_bits_of(i, Some(BitWidth::new(bits).unwrap()));
        }
        let mut r = init::rng(100);
        let calibration = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut r);
        Arc::new(CompiledVgg::compile(&model, &calibration, CompileOptions::default()).unwrap())
    }

    #[test]
    fn parse_rejects_malformed_payloads() {
        assert!(parse_request(&[]).is_none());
        assert!(parse_request(&[1; 5]).is_none());
        // n claims 2 floats but body has 1
        let mut p = vec![KIND_INFER];
        p.extend_from_slice(&1u64.to_le_bytes());
        p.extend_from_slice(&2u32.to_le_bytes());
        p.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(parse_request(&p).is_none());
    }

    #[test]
    fn serve_roundtrip_batches_and_shuts_down() {
        let model = compiled_tiny();
        let input_len = model.input_len();
        let classes = model.classes();
        let mut server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&model),
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(5),
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // responses must match a direct batched model run exactly
        let mut r = init::rng(7);
        let images = init::normal(&[3, 3, 8, 8], 0.0, 1.0, &mut r);
        let direct = model.run(&images);
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        for i in 0..3 {
            let row = &images.data()[i * input_len..(i + 1) * input_len];
            let logits = client.infer(row).unwrap().unwrap();
            assert_eq!(logits.len(), classes);
            assert_eq!(logits, &direct.data()[i * classes..(i + 1) * classes]);
        }

        // wrong input length is a protocol-level error, not a hang
        let err = client.infer(&[1.0, 2.0]).unwrap().unwrap_err();
        assert!(err.contains("length"), "unexpected error: {err}");

        // concurrent clients coalesce into batches
        let stats = load_generate(addr, 4, 10, input_len).unwrap();
        assert_eq!(stats.requests, 40);
        assert_eq!(stats.errors, 0);
        assert!(stats.p99_ns >= stats.p50_ns);
        let sizes = metrics::global()
            .histogram_with_bounds("serve.batch_size", &[1, 2, 4, 8, 16, 32, 64, 128]);
        assert!(sizes.count() > 0, "batcher recorded no batches");

        // remote shutdown drains and stops both threads
        client.shutdown_server().unwrap();
        server.wait();
        assert!(server.shutting_down());
        assert!(
            Client::connect(addr).is_err() || {
                // the listener may accept one last queued connection; a fresh
                // request on it must be refused
                true
            }
        );
    }

    #[test]
    fn local_shutdown_joins_threads() {
        let model = compiled_tiny();
        let mut server = Server::bind("127.0.0.1:0", model, ServeConfig::default()).unwrap();
        server.shutdown();
        assert!(server.shutting_down());
    }
}
