//! Scaled-out TCP serving front-end for bit-packed integer inference.
//!
//! Three fixed-size thread pools replace PR-8's thread-per-connection /
//! single-batcher design:
//!
//! - an **accept thread** owns the listener and hands accepted sockets to
//!   a shared injector queue;
//! - a pool of [`ServeConfig::conn_workers`] **connection workers**
//!   multiplexes all sockets with non-blocking reads behind a small
//!   `poll(2)` readiness loop (no external deps — the raw syscall via an
//!   `extern "C"` declaration on Unix, a short-sleep scan elsewhere).
//!   Workers decode frames incrementally, answer control frames inline,
//!   and push inference work onto the request queue;
//! - [`ServeConfig::replicas`] **replica executors** pop coalesced
//!   batches off the queue and run them through a *shared*
//!   [`ServeModel`] (an `Arc` clone per replica — packed weights are
//!   shared, while each replica thread gets its own thread-keyed scratch
//!   arena and staging buffers), writing responses straight back to each
//!   request's connection. Batches therefore execute concurrently across
//!   replicas.
//!
//! The request queue is **bounded** ([`ServeConfig::queue_cap`]). When it
//! is full, admission control applies [`ServeConfig::overload`]: either
//! the newcomer is refused with a 503-style shed frame
//! ([`OverloadPolicy::Reject`]) or the oldest queued request — the one
//! closest to blowing its deadline — is shed to make room
//! ([`OverloadPolicy::ShedOldest`]). Either way the server's memory is
//! bounded and overload degrades into explicit, typed shed responses
//! instead of unbounded queue growth.
//!
//! ## Wire protocol
//!
//! Every frame is `u32` little-endian payload length, then the payload.
//! Request payload: `[kind: u8][id: u64 LE][n: u32 LE][n × f32 LE]`
//! with kinds `1` = infer (`n` = flattened input length), `2` = ping,
//! `3` = shutdown. Response payload: `[status: u8][id: u64 LE]
//! [n: u32 LE][body]`; status `0` carries `n × f32 LE` logits, status `1`
//! carries a UTF-8 error message, status `2` is a shed/overload refusal
//! (UTF-8 reason), and status `3` is a **goodbye** frame the server sends
//! on every connection right before closing it during shutdown — a client
//! never sees an unexplained EOF mid-request.
//!
//! The high bit of the kind byte ([`FLAG_TRACED`]) is a version-tolerant
//! tracing opt-in: a client setting it on an infer request receives the
//! server-assigned **trace id** as an 8-byte LE trailer appended after
//! the response body (any status), which lets it join its client-side
//! latency against the server's access-log record for the same request.
//! Clients that never set the bit get byte-identical responses to the
//! pre-tracing protocol, and old servers answer flagged kinds with a
//! typed `unknown request kind` error rather than misparsing them.
//!
//! ## Observability
//!
//! `serve.queue_depth` / `serve.inflight` / `serve.replicas` /
//! `serve.conn_workers` / `serve.queue_cap` gauges; `serve.batch_size`,
//! `serve.latency_ns` (enqueue → response written) and
//! `serve.batch_run_ns` histograms plus a per-replica
//! `serve.replica{i}.batch_run_ns`; `serve.requests` / `serve.errors` /
//! `serve.shed_total` / `serve.queue_rejected` counters — all through the
//! global [`adq_telemetry::metrics`] registry, so a `MetricsEndpoint` in
//! the same process exposes them to Prometheus and `adq-watch --scrape`.
//!
//! Every request additionally gets monotonic stage stamps (frame-read →
//! admit → dequeue → batch-formed → replica-exec → response-written)
//! feeding the `serve.stage.{queue_wait,batch_wait,exec,write}_ns`
//! histograms, so a `serve.latency_ns` tail can be attributed to queue
//! wait vs. batch formation vs. execution vs. the socket write. With
//! [`Server::bind_logged`] the same stamps become one
//! [`RequestRecord`](adq_telemetry::lifecycle::RequestRecord) per request
//! (trace id, conn id, replica, batch size, stage deltas, outcome:
//! `ok`/`shed`/`error`/`goodbye-refused`) in a JSONL access log
//! ([`adq_telemetry::lifecycle::AccessLog`]) for `adq-report --serving`
//! and `adq-watch --access-log`; `serve.access_log.{records,dropped,
//! write_errors}` count the log's own health. Logging is observation-only
//! by contract — access log on vs. off yields byte-identical responses
//! (`tests/access_log.rs` enforces it).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adq_telemetry::lifecycle::{
    AccessLog, AccessLogHandle, RequestRecord, OUTCOME_ERROR, OUTCOME_GOODBYE_REFUSED, OUTCOME_OK,
    OUTCOME_SHED,
};
use adq_telemetry::metrics;
use adq_telemetry::span;
use adq_tensor::Tensor;

use crate::compile::CompiledVgg;

/// Request kind: run inference on one flattened image.
const KIND_INFER: u8 = 1;
/// Request kind: liveness check, echoes an empty OK.
const KIND_PING: u8 = 2;
/// Request kind: stop the server after draining the queue.
const KIND_SHUTDOWN: u8 = 3;

/// High bit of the kind byte: the client opts into tracing, and the
/// response carries the server-assigned trace id as an 8-byte LE
/// trailer after the body. Old servers reject flagged kinds with a
/// typed error; old clients never set the bit and see the unchanged
/// protocol.
const FLAG_TRACED: u8 = 0x80;

/// Mask selecting the request kind under [`FLAG_TRACED`].
const KIND_MASK: u8 = 0x7F;

/// Response status: success, payload carries logits.
const STATUS_OK: u8 = 0;
/// Response status: failure, payload carries a UTF-8 message.
const STATUS_ERR: u8 = 1;
/// Response status: request shed by admission control (503-style).
const STATUS_SHED: u8 = 2;
/// Response status: server is closing this connection (shutdown).
const STATUS_GOODBYE: u8 = 3;

/// Upper bound on accepted frame payloads (guards the length prefix).
const MAX_FRAME: usize = 16 << 20;

/// Readiness-poll timeout: bounds new-connection pickup and shutdown
/// observation latency without burning CPU when idle.
const POLL_TIMEOUT_MS: i32 = 2;

/// How long a blocked response write may retry before the connection is
/// declared dead (a client that stops reading must not wedge a worker).
const WRITE_STALL_LIMIT: Duration = Duration::from_secs(2);

// ---- readiness ----------------------------------------------------------

/// Minimal `poll(2)` wrapper. Std already links libc on every Unix
/// target, so declaring the symbol adds no dependency.
#[cfg(unix)]
mod readiness {
    use std::os::unix::io::RawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Indices of `fds` with pending events (readable, hung up, or
    /// errored — all of which a subsequent `read` surfaces) within
    /// `timeout_ms`. An empty `fds` just sleeps out the timeout.
    pub fn ready(fds: &[RawFd], timeout_ms: i32) -> Vec<usize> {
        if fds.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
            return Vec::new();
        }
        let mut pollfds: Vec<PollFd> = fds
            .iter()
            .map(|&fd| PollFd {
                fd,
                events: POLLIN,
                revents: 0,
            })
            .collect();
        let rc = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as u64, timeout_ms) };
        if rc <= 0 {
            return Vec::new();
        }
        pollfds
            .iter()
            .enumerate()
            .filter(|(_, p)| p.revents != 0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Portable fallback: report every socket as possibly-readable after a
/// short sleep; the non-blocking reads then sort out who actually was.
#[cfg(not(unix))]
mod readiness {
    pub type RawFd = i32;

    pub fn ready(fds: &[RawFd], timeout_ms: i32) -> Vec<usize> {
        std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(1) as u64));
        (0..fds.len()).collect()
    }
}

// ---- model abstraction --------------------------------------------------

/// What the serving layer needs from a model: shape metadata and a
/// batched forward pass. [`CompiledVgg`] is the production
/// implementation; tests substitute slow or synthetic stubs to exercise
/// overload behavior without real kernels.
pub trait ServeModel: Send + Sync {
    /// Expected input shape as `(channels, height/width)`.
    fn input_shape(&self) -> (usize, usize);
    /// Number of output classes (logits per image).
    fn classes(&self) -> usize;
    /// Batched forward pass: `[N, C, H, W]` images to `[N, classes]`
    /// logits.
    fn run(&self, images: &Tensor) -> Tensor;
    /// Flattened input length of one image.
    fn input_len(&self) -> usize {
        let (c, hw) = self.input_shape();
        c * hw * hw
    }
}

impl ServeModel for CompiledVgg {
    fn input_shape(&self) -> (usize, usize) {
        CompiledVgg::input_shape(self)
    }

    fn classes(&self) -> usize {
        CompiledVgg::classes(self)
    }

    fn run(&self, images: &Tensor) -> Tensor {
        CompiledVgg::run(self, images)
    }
}

// ---- configuration ------------------------------------------------------

/// What admission control does with a request that finds the queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse the newcomer with a shed frame; queued work is untouched.
    Reject,
    /// Shed the *oldest* queued request — the one closest to its
    /// deadline, hence least worth finishing — and admit the newcomer.
    ShedOldest,
}

/// Batching, pooling and admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Most requests coalesced into one model invocation.
    pub max_batch: usize,
    /// Longest the oldest queued request waits for company.
    pub max_wait: Duration,
    /// Fixed number of connection workers multiplexing all sockets.
    pub conn_workers: usize,
    /// Model replicas executing batches in parallel. Replicas share the
    /// packed weights (`Arc` clones); each gets its own executor thread,
    /// thread-keyed scratch, and `serve.replica{i}.batch_run_ns`
    /// histogram.
    pub replicas: usize,
    /// Bound on queued (admitted, not yet executing) requests.
    pub queue_cap: usize,
    /// Admission policy once `queue_cap` is reached.
    pub overload: OverloadPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        // Concurrent closed-loop clients re-enqueue within microseconds of
        // each other (their previous responses complete together), so a
        // short gather window coalesces full batches without taxing the
        // lightly-loaded case a long deadline would.
        Self {
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            conn_workers: 2,
            replicas: 1,
            queue_cap: 256,
            overload: OverloadPolicy::Reject,
        }
    }
}

// ---- shared state -------------------------------------------------------

/// Write half of a connection, shared between the worker that reads the
/// socket and the executors that answer its requests. `inflight` counts
/// admitted-but-unanswered requests; shutdown only closes a connection
/// once it reaches zero, so no admitted request ever loses its response.
#[derive(Clone)]
struct ConnWriter {
    stream: Arc<Mutex<TcpStream>>,
    inflight: Arc<AtomicUsize>,
    dead: Arc<AtomicBool>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream: Arc::new(Mutex::new(stream)),
            inflight: Arc::new(AtomicUsize::new(0)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Writes one response frame, retrying `WouldBlock` with short sleeps
    /// up to [`WRITE_STALL_LIMIT`]; a connection that stays unwritable is
    /// marked dead and silently dropped from then on. `trace` appends the
    /// trace-id trailer for clients that set [`FLAG_TRACED`].
    fn send(&self, status: u8, id: u64, body: &dyn ResponseBody, trace: Option<u64>) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut payload = Vec::with_capacity(13);
        payload.push(status);
        payload.extend_from_slice(&id.to_le_bytes());
        body.encode(&mut payload);
        if let Some(trace_id) = trace {
            payload.extend_from_slice(&trace_id.to_le_bytes());
        }
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&u32::to_le_bytes(payload.len() as u32));
        frame.extend_from_slice(&payload);

        let mut stream = self.stream.lock().expect("conn writer lock");
        let mut written = 0usize;
        let started = Instant::now();
        while written < frame.len() {
            match stream.write(&frame[written..]) {
                Ok(0) => {
                    self.dead.store(true, Ordering::Relaxed);
                    return;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if started.elapsed() > WRITE_STALL_LIMIT {
                        self.dead.store(true, Ordering::Relaxed);
                        return;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
        let _ = stream.flush();
    }
}

/// Saturating `Duration` → nanoseconds for metric/record fields.
fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One admitted inference request, with its lifecycle stamps so far.
struct Pending {
    input: Vec<f32>,
    /// Frame fully read off the socket (lifecycle origin).
    received: Instant,
    /// Handed to admission control (queue-wait origin).
    enqueued: Instant,
    id: u64,
    /// Server-assigned trace id (unique per server).
    trace_id: u64,
    /// Whether the client opted into the trace-id response trailer.
    traced: bool,
    /// Accept-order id of the connection the request arrived on.
    conn_id: u64,
    writer: ConnWriter,
}

#[derive(Default)]
struct Queue {
    items: VecDeque<Pending>,
    /// Set once; executors drain what is queued, then exit.
    closed: bool,
}

/// Outcome of offering a request to the bounded queue.
enum Admission {
    /// Enqueued; wake an executor.
    Admitted,
    /// Enqueued after shedding the oldest queued request (returned).
    AdmittedShedding(Pending),
    /// Queue full under [`OverloadPolicy::Reject`]; the request bounces.
    Rejected(Pending),
    /// Queue closed (shutdown); the request bounces as an error.
    Closed(Pending),
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Executors still running; conn workers may only say goodbye and
    /// close once this reaches zero (all admitted work answered).
    executors_live: AtomicUsize,
    config: ServeConfig,
    addr: SocketAddr,
    input_len: usize,
    /// Source of per-server trace ids (first id is 1). Per-server — not
    /// process-global — so a server's id sequence is deterministic given
    /// its request sequence (the byte-identity contract test relies on
    /// this).
    trace_counter: AtomicU64,
    /// Producer half of the access log, when one is attached.
    log: Option<AccessLogHandle>,
    /// Server start, the zero point for record `ts_ns` ordering stamps.
    started: Instant,
}

impl Shared {
    fn next_trace_id(&self) -> u64 {
        self.trace_counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn ts_ns(&self) -> u64 {
        ns(self.started.elapsed())
    }

    /// Logs a non-`ok` outcome: stages that never happened stay zero.
    /// Call after the refusal response is written so `total_ns` spans
    /// frame-read → response-written like the `ok` records.
    fn log_refusal(&self, outcome: &str, pending: &Pending, queue_wait_ns: u64, depth: u64) {
        let Some(log) = &self.log else { return };
        log.record(RequestRecord {
            trace_id: pending.trace_id,
            conn_id: pending.conn_id,
            replica: None,
            batch_size: None,
            outcome: outcome.to_string(),
            admit_ns: ns(pending.enqueued.saturating_duration_since(pending.received)),
            queue_wait_ns,
            batch_wait_ns: 0,
            exec_ns: 0,
            write_ns: 0,
            total_ns: ns(pending.received.elapsed()),
            queue_depth: depth,
            queue_cap: self.config.queue_cap.max(1) as u64,
            ts_ns: self.ts_ns(),
        });
    }
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut q = self.queue.lock().expect("serve queue lock");
        q.closed = true;
        drop(q);
        self.wake.notify_all();
    }

    /// Bounded-queue admission control (see [`OverloadPolicy`]).
    fn offer(&self, pending: Pending) -> Admission {
        let cap = self.config.queue_cap.max(1);
        let mut q = self.queue.lock().expect("serve queue lock");
        if q.closed {
            return Admission::Closed(pending);
        }
        let mut shed = None;
        if q.items.len() >= cap {
            match self.config.overload {
                OverloadPolicy::Reject => return Admission::Rejected(pending),
                OverloadPolicy::ShedOldest => {
                    // front = oldest enqueue time = nearest deadline
                    shed = q.items.pop_front();
                }
            }
        }
        q.items.push_back(pending);
        metrics::global()
            .gauge("serve.queue_depth")
            .set(q.items.len() as f64);
        drop(q);
        self.wake.notify_all();
        match shed {
            Some(victim) => Admission::AdmittedShedding(victim),
            None => Admission::Admitted,
        }
    }
}

// ---- server -------------------------------------------------------------

/// A running inference server. Dropping without [`Server::shutdown`]
/// leaks the service threads; tests and binaries should shut down
/// explicitly.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    executor_handles: Vec<JoinHandle<()>>,
    /// Owned so the summary line is written after every producer thread
    /// has been joined (no record can race the close).
    access_log: Option<AccessLog>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts the
    /// accept loop, the connection-worker pool, and one executor thread
    /// per model replica.
    ///
    /// # Errors
    ///
    /// Returns any socket-level error from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        model: Arc<dyn ServeModel>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        Self::bind_logged(addr, model, config, None)
    }

    /// [`Server::bind`] with an optional JSONL access log attached: one
    /// [`RequestRecord`] per request flows through the log's writer
    /// thread, and shutdown closes the log (summary line + flush) after
    /// the service threads have joined. Logging is observation-only —
    /// responses are byte-identical with and without it.
    ///
    /// # Errors
    ///
    /// Returns any socket-level error from binding.
    pub fn bind_logged(
        addr: impl ToSocketAddrs,
        model: Arc<dyn ServeModel>,
        config: ServeConfig,
        access_log: Option<AccessLog>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let conn_workers = config.conn_workers.max(1);
        let replicas = config.replicas.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executors_live: AtomicUsize::new(replicas),
            config,
            addr: local,
            input_len: model.input_len(),
            trace_counter: AtomicU64::new(0),
            log: access_log.as_ref().map(AccessLog::handle),
            started: Instant::now(),
        });

        // register the serving metrics eagerly so a scrape sees the full
        // dashboard (zeros included) before the first overload
        let m = metrics::global();
        m.counter("serve.requests");
        m.counter("serve.errors");
        m.counter("serve.shed_total");
        m.counter("serve.queue_rejected");
        m.counter("serve.access_log.records");
        m.counter("serve.access_log.dropped");
        m.counter("serve.access_log.write_errors");
        m.histogram("serve.stage.queue_wait_ns");
        m.histogram("serve.stage.batch_wait_ns");
        m.histogram("serve.stage.exec_ns");
        m.histogram("serve.stage.write_ns");
        m.gauge("serve.queue_depth").set(0.0);
        m.gauge("serve.inflight").set(0.0);
        m.gauge("serve.replicas").set(replicas as f64);
        m.gauge("serve.conn_workers").set(conn_workers as f64);
        m.gauge("serve.queue_cap")
            .set(config.queue_cap.max(1) as f64);

        let injector: Arc<Mutex<VecDeque<Conn>>> = Arc::new(Mutex::new(VecDeque::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_injector = Arc::clone(&injector);
        let accept_handle = std::thread::Builder::new()
            .name("adq-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_injector, accept_shared))
            .expect("spawn accept thread");

        let mut worker_handles = Vec::with_capacity(conn_workers);
        for i in 0..conn_workers {
            let worker_shared = Arc::clone(&shared);
            let worker_injector = Arc::clone(&injector);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("adq-serve-conn{i}"))
                    .spawn(move || conn_worker_loop(worker_shared, worker_injector))
                    .expect("spawn connection worker"),
            );
        }

        let exec_inflight = Arc::new(AtomicUsize::new(0));
        let mut executor_handles = Vec::with_capacity(replicas);
        for i in 0..replicas {
            let exec_shared = Arc::clone(&shared);
            let exec_model = Arc::clone(&model);
            let exec_count = Arc::clone(&exec_inflight);
            executor_handles.push(
                std::thread::Builder::new()
                    .name(format!("adq-serve-exec{i}"))
                    .spawn(move || executor_loop(exec_model, exec_shared, exec_count, i))
                    .expect("spawn replica executor"),
            );
        }

        Ok(Server {
            addr: local,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
            executor_handles,
            access_log,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains admitted requests, sends a goodbye frame
    /// on every open connection, and joins all service threads.
    pub fn shutdown(&mut self) {
        self.shared.request_shutdown();
        // unblock the accept loop with a wake-up connection
        let _ = TcpStream::connect(self.addr);
        self.join_all();
    }

    /// Parks the caller until the service threads exit (a remote
    /// shutdown frame, or a prior [`Server::shutdown`]).
    pub fn wait(&mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.executor_handles.drain(..) {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // every producer thread is gone; drain + summarise the log
        if let Some(log) = self.access_log.take() {
            log.close();
        }
    }
}

fn accept_loop(listener: TcpListener, injector: Arc<Mutex<VecDeque<Conn>>>, shared: Arc<Shared>) {
    let mut next_conn_id = 0u64;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        stream.set_nodelay(true).ok();
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        next_conn_id += 1;
        injector
            .lock()
            .expect("conn injector lock")
            .push_back(Conn::new(stream, ConnWriter::new(write_half), next_conn_id));
    }
}

// ---- connection workers -------------------------------------------------

/// Incremental length-prefixed frame decoder over a non-blocking socket.
#[derive(Default)]
struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Err` on an oversized length prefix.
    fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

/// One multiplexed connection, owned by exactly one worker.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: ConnWriter,
    /// Accept-order id, carried into access-log records.
    conn_id: u64,
    alive: bool,
}

impl Conn {
    fn new(stream: TcpStream, writer: ConnWriter, conn_id: u64) -> Self {
        Self {
            stream,
            reader: FrameReader::default(),
            writer,
            conn_id,
            alive: true,
        }
    }
}

/// A connection worker: adopts sockets from the injector, polls the ones
/// it owns for readability, decodes frames, answers control frames
/// inline, and routes inference frames through admission control.
fn conn_worker_loop(shared: Arc<Shared>, injector: Arc<Mutex<VecDeque<Conn>>>) {
    let mut conns: Vec<Conn> = Vec::new();
    let requests = metrics::global().counter("serve.requests");
    let errors = metrics::global().counter("serve.errors");
    let shed_total = metrics::global().counter("serve.shed_total");
    let queue_rejected = metrics::global().counter("serve.queue_rejected");

    loop {
        // adopt newly accepted connections (work-stealing: whichever
        // worker gets there first takes the front one)
        if let Some(conn) = injector.lock().expect("conn injector lock").pop_front() {
            conns.push(conn);
        }

        if shared.shutdown.load(Ordering::SeqCst) {
            // drain phase: keep answering frames (queued work is still
            // completing) until every executor has exited and all of this
            // worker's connections have no response outstanding — then
            // each gets a typed goodbye instead of a bare EOF.
            if shared.executors_live.load(Ordering::SeqCst) == 0 {
                let mut remaining = Vec::new();
                for conn in conns.drain(..) {
                    if conn.writer.inflight.load(Ordering::SeqCst) == 0 {
                        conn.writer
                            .send(STATUS_GOODBYE, 0, &ErrBody("server shutting down"), None);
                        // drop closes the socket after the goodbye frame
                    } else {
                        remaining.push(conn);
                    }
                }
                conns = remaining;
                if conns.is_empty() {
                    // one worker may still hold injected conns nobody
                    // adopted; they get goodbyes from whoever adopts them
                    let mut inj = injector.lock().expect("conn injector lock");
                    while let Some(conn) = inj.pop_front() {
                        conn.writer
                            .send(STATUS_GOODBYE, 0, &ErrBody("server shutting down"), None);
                    }
                    return;
                }
            }
        }

        #[cfg(unix)]
        let fds: Vec<std::os::unix::io::RawFd> = {
            use std::os::unix::io::AsRawFd;
            conns.iter().map(|c| c.stream.as_raw_fd()).collect()
        };
        #[cfg(not(unix))]
        let fds: Vec<readiness::RawFd> = (0..conns.len() as i32).collect();

        for idx in readiness::ready(&fds, POLL_TIMEOUT_MS) {
            let conn = &mut conns[idx];
            // drain the socket into the frame buffer
            let mut scratch = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.alive = false;
                        break;
                    }
                    Ok(n) => conn.reader.push(&scratch[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.alive = false;
                        break;
                    }
                }
            }
            // process every complete frame
            loop {
                let frame = match conn.reader.next_frame() {
                    Ok(Some(frame)) => frame,
                    Ok(None) => break,
                    Err(_) => {
                        conn.alive = false;
                        break;
                    }
                };
                handle_frame(
                    &frame,
                    conn,
                    &shared,
                    &requests,
                    &errors,
                    &shed_total,
                    &queue_rejected,
                );
            }
        }
        conns.retain(|c| c.alive && !c.writer.dead.load(Ordering::Relaxed));
    }
}

/// Handles one decoded request frame on a worker thread.
fn handle_frame(
    frame: &[u8],
    conn: &mut Conn,
    shared: &Arc<Shared>,
    requests: &metrics::Counter,
    errors: &metrics::Counter,
    shed_total: &metrics::Counter,
    queue_rejected: &metrics::Counter,
) {
    // frame-read stamp: the request is fully off the socket
    let received = Instant::now();
    let Some((kind, traced, id, body)) = parse_request(frame) else {
        // unparseable bytes carry no id and get no lifecycle record
        errors.inc();
        conn.writer
            .send(STATUS_ERR, 0, &ErrBody("malformed frame"), None);
        return;
    };
    match kind {
        KIND_PING => conn.writer.send(STATUS_OK, id, &OkBody(&[]), None),
        KIND_SHUTDOWN => {
            conn.writer.send(STATUS_OK, id, &OkBody(&[]), None);
            shared.request_shutdown();
            // wake the accept loop so it can observe the flag
            let _ = TcpStream::connect(shared.addr);
        }
        KIND_INFER => {
            requests.inc();
            let trace_id = shared.next_trace_id();
            let echo = traced.then_some(trace_id);
            if body.len() != shared.input_len {
                errors.inc();
                conn.writer
                    .send(STATUS_ERR, id, &ErrBody("bad input length"), echo);
                if let Some(log) = &shared.log {
                    log.record(RequestRecord {
                        trace_id,
                        conn_id: conn.conn_id,
                        replica: None,
                        batch_size: None,
                        outcome: OUTCOME_ERROR.to_string(),
                        admit_ns: 0,
                        queue_wait_ns: 0,
                        batch_wait_ns: 0,
                        exec_ns: 0,
                        write_ns: 0,
                        total_ns: ns(received.elapsed()),
                        queue_depth: 0,
                        queue_cap: shared.config.queue_cap.max(1) as u64,
                        ts_ns: shared.ts_ns(),
                    });
                }
                return;
            }
            let pending = Pending {
                input: body,
                received,
                enqueued: Instant::now(),
                id,
                trace_id,
                traced,
                conn_id: conn.conn_id,
                writer: conn.writer.clone(),
            };
            pending.writer.inflight.fetch_add(1, Ordering::SeqCst);
            let cap = shared.config.queue_cap.max(1) as u64;
            match shared.offer(pending) {
                Admission::Admitted => {}
                Admission::AdmittedShedding(victim) => {
                    shed_total.inc();
                    let waited = ns(victim.enqueued.elapsed());
                    victim.writer.send(
                        STATUS_SHED,
                        victim.id,
                        &ErrBody("shed under load (superseded by newer work)"),
                        victim.traced.then_some(victim.trace_id),
                    );
                    // evicted from a full queue: the victim's queue wait
                    // ran from its admission to its eviction
                    shared.log_refusal(OUTCOME_SHED, &victim, waited, cap);
                    victim.writer.inflight.fetch_sub(1, Ordering::SeqCst);
                }
                Admission::Rejected(bounced) => {
                    shed_total.inc();
                    queue_rejected.inc();
                    bounced.writer.send(
                        STATUS_SHED,
                        bounced.id,
                        &ErrBody("queue full, try later"),
                        bounced.traced.then_some(bounced.trace_id),
                    );
                    shared.log_refusal(OUTCOME_SHED, &bounced, 0, cap);
                    bounced.writer.inflight.fetch_sub(1, Ordering::SeqCst);
                }
                Admission::Closed(bounced) => {
                    errors.inc();
                    bounced.writer.send(
                        STATUS_ERR,
                        bounced.id,
                        &ErrBody("shutting down"),
                        bounced.traced.then_some(bounced.trace_id),
                    );
                    shared.log_refusal(OUTCOME_GOODBYE_REFUSED, &bounced, 0, 0);
                    bounced.writer.inflight.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        _ => {
            errors.inc();
            conn.writer
                .send(STATUS_ERR, id, &ErrBody("unknown request kind"), None);
        }
    }
}

// ---- replica executors --------------------------------------------------

/// One replica's executor: coalesces up to `max_batch` admitted requests
/// (or whatever arrived when the oldest request's deadline expires), runs
/// a single batched inference on the shared model, and writes each
/// response straight to its connection.
fn executor_loop(
    model: Arc<dyn ServeModel>,
    shared: Arc<Shared>,
    exec_inflight: Arc<AtomicUsize>,
    replica: usize,
) {
    let config = shared.config;
    let max_batch = config.max_batch.max(1);
    let queue_cap = config.queue_cap.max(1) as u64;
    let queue_depth = metrics::global().gauge("serve.queue_depth");
    let inflight = metrics::global().gauge("serve.inflight");
    let batch_sizes =
        metrics::global().histogram_with_bounds("serve.batch_size", &[1, 2, 4, 8, 16, 32, 64, 128]);
    let latency = metrics::global().histogram("serve.latency_ns");
    let batch_run = metrics::global().histogram("serve.batch_run_ns");
    let replica_run = metrics::global().histogram(&format!("serve.replica{replica}.batch_run_ns"));
    let stage_queue_wait = metrics::global().histogram("serve.stage.queue_wait_ns");
    let stage_batch_wait = metrics::global().histogram("serve.stage.batch_wait_ns");
    let stage_exec = metrics::global().histogram("serve.stage.exec_ns");
    let stage_write = metrics::global().histogram("serve.stage.write_ns");

    loop {
        let (batch, claim, depth_after): (Vec<Pending>, Instant, u64) = {
            let mut q = shared.queue.lock().expect("serve queue lock");
            // wait for the first request (or close)
            while q.items.is_empty() && !q.closed {
                let (guard, _) = shared
                    .wake
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("serve queue lock");
                q = guard;
            }
            if q.items.is_empty() && q.closed {
                break;
            }
            // dequeue stamp: this replica claimed the queue front and the
            // batch-formation window (the gather below) begins
            let claim = Instant::now();
            // give the oldest request's deadline a chance to gather company
            let deadline = q.items.front().expect("non-empty").enqueued + config.max_wait;
            while q.items.len() < max_batch && !q.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(q, deadline - now)
                    .expect("serve queue lock");
                q = guard;
                // another replica may have drained the queue while we
                // gathered; go back to the outer wait instead of spinning
                if q.items.is_empty() {
                    break;
                }
            }
            let take = q.items.len().min(max_batch);
            let batch: Vec<Pending> = q.items.drain(..take).collect();
            queue_depth.set(q.items.len() as f64);
            (batch, claim, q.items.len() as u64)
        };
        if batch.is_empty() {
            continue;
        }

        let _span = span::span("serve.batch");
        // batch-formed stamp: gathering is over, execution starts
        let started = Instant::now();
        inflight.set(
            exec_inflight.fetch_add(batch.len(), Ordering::SeqCst) as f64 + batch.len() as f64,
        );
        batch_sizes.record(batch.len() as u64);

        let (c, hw) = model.input_shape();
        let input_len = model.input_len();
        let mut images = Tensor::zeros(&[batch.len(), c, hw, hw]);
        for (i, pending) in batch.iter().enumerate() {
            images.data_mut()[i * input_len..(i + 1) * input_len].copy_from_slice(&pending.input);
        }
        let logits = model.run(&images);
        let classes = model.classes();
        let run_ns = ns(started.elapsed());
        batch_run.record(run_ns);
        replica_run.record(run_ns);

        // replica-exec done: tensor assembly + integer GEMMs + requant
        let done = Instant::now();
        let exec_ns = ns(done.saturating_duration_since(started));
        let taken = batch.len();
        for (i, pending) in batch.into_iter().enumerate() {
            let row = &logits.data()[i * classes..(i + 1) * classes];
            // a request that arrived mid-gather was never waiting on the
            // queue: clamp its dequeue stamp into [enqueued, started]
            let dequeue = claim.clamp(pending.enqueued, started);
            let queue_wait_ns = ns(dequeue.saturating_duration_since(pending.enqueued));
            let batch_wait_ns = ns(started.saturating_duration_since(dequeue));
            let write_from = Instant::now();
            // a disconnected client just drops its response
            pending.writer.send(
                STATUS_OK,
                pending.id,
                &OkBody(row),
                pending.traced.then_some(pending.trace_id),
            );
            let written = Instant::now();
            let write_ns = ns(written.saturating_duration_since(write_from));
            stage_queue_wait.record(queue_wait_ns);
            stage_batch_wait.record(batch_wait_ns);
            stage_exec.record(exec_ns);
            stage_write.record(write_ns);
            latency.record(ns(written.saturating_duration_since(pending.enqueued)));
            if let Some(log) = &shared.log {
                log.record(RequestRecord {
                    trace_id: pending.trace_id,
                    conn_id: pending.conn_id,
                    replica: Some(replica as u64),
                    batch_size: Some(taken as u64),
                    outcome: OUTCOME_OK.to_string(),
                    admit_ns: ns(pending.enqueued.saturating_duration_since(pending.received)),
                    queue_wait_ns,
                    batch_wait_ns,
                    exec_ns,
                    write_ns,
                    total_ns: ns(written.saturating_duration_since(pending.received)),
                    queue_depth: depth_after,
                    queue_cap,
                    ts_ns: shared.ts_ns(),
                });
            }
            pending.writer.inflight.fetch_sub(1, Ordering::SeqCst);
        }
        inflight.set(exec_inflight.fetch_sub(taken, Ordering::SeqCst) as f64 - taken as f64);
    }
    // last executor out wakes its peers so they observe the close too
    shared.executors_live.fetch_sub(1, Ordering::SeqCst);
    shared.wake.notify_all();
}

// ---- wire helpers -------------------------------------------------------

/// Reads one length-prefixed frame from a blocking stream; `None` on
/// clean EOF at a frame boundary. (Client-side helper — the server reads
/// through [`FrameReader`].)
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&u32::to_le_bytes(payload.len() as u32))?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Parses a request payload into `(kind, traced, id, floats)`; `traced`
/// is the [`FLAG_TRACED`] bit of the kind byte.
fn parse_request(payload: &[u8]) -> Option<(u8, bool, u64, Vec<f32>)> {
    if payload.len() < 13 {
        return None;
    }
    let kind = payload[0] & KIND_MASK;
    let traced = payload[0] & FLAG_TRACED != 0;
    let id = u64::from_le_bytes(payload[1..9].try_into().ok()?);
    let n = u32::from_le_bytes(payload[9..13].try_into().ok()?) as usize;
    let body = &payload[13..];
    if body.len() != n * 4 {
        return None;
    }
    let floats = body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect();
    Some((kind, traced, id, floats))
}

struct OkBody<'a>(&'a [f32]);
struct ErrBody<'a>(&'a str);

trait ResponseBody {
    fn encode(&self, out: &mut Vec<u8>);
}

impl ResponseBody for OkBody<'_> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&u32::to_le_bytes(self.0.len() as u32));
        for v in self.0 {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

impl ResponseBody for ErrBody<'_> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&u32::to_le_bytes(0));
        out.extend_from_slice(self.0.as_bytes());
    }
}

// ---- client -------------------------------------------------------------

/// A server's answer to one inference request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success: the logits.
    Logits(Vec<f32>),
    /// The server refused the request (protocol error, shutdown, ...).
    Refused(String),
    /// Admission control shed the request under overload — retry later.
    Shed(String),
}

impl Reply {
    /// Collapses to the pre-shedding API: logits or an error string
    /// (shed replies read as errors prefixed with `shed: `).
    pub fn into_result(self) -> Result<Vec<f32>, String> {
        match self {
            Reply::Logits(logits) => Ok(logits),
            Reply::Refused(msg) => Err(msg),
            Reply::Shed(msg) => Err(format!("shed: {msg}")),
        }
    }
}

/// A blocking client for the serving protocol.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns socket-level connect errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 0 })
    }

    fn request(&mut self, kind: u8, input: &[f32]) -> io::Result<Reply> {
        Ok(self.request_traced(kind, input, false)?.0)
    }

    /// One request/response round trip. With `traced` the request sets
    /// [`FLAG_TRACED`] and the response's 8-byte trace-id trailer is
    /// stripped and returned; without it the wire bytes are identical to
    /// the pre-tracing protocol.
    fn request_traced(
        &mut self,
        kind: u8,
        input: &[f32],
        traced: bool,
    ) -> io::Result<(Reply, Option<u64>)> {
        self.next_id += 1;
        let id = self.next_id;
        let mut payload = Vec::with_capacity(13 + input.len() * 4);
        payload.push(if traced { kind | FLAG_TRACED } else { kind });
        payload.extend_from_slice(&id.to_le_bytes());
        payload.extend_from_slice(&u32::to_le_bytes(input.len() as u32));
        for v in input {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        write_frame(&mut self.stream, &payload)?;
        let response = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })?;
        if response.len() < 13 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "short response frame",
            ));
        }
        let status = response[0];
        if status == STATUS_GOODBYE {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server sent goodbye (shutting down)",
            ));
        }
        let got_id = u64::from_le_bytes(response[1..9].try_into().expect("8 bytes"));
        if got_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {got_id} does not match request id {id}"),
            ));
        }
        // the trailer is only ever present when this request asked for it
        let (body, trace_id) = if traced && response.len() >= 13 + 8 {
            let split = response.len() - 8;
            let trace = u64::from_le_bytes(response[split..].try_into().expect("8 bytes"));
            (&response[13..split], Some(trace))
        } else {
            (&response[13..], None)
        };
        let reply = match status {
            STATUS_OK => {
                let n = u32::from_le_bytes(response[9..13].try_into().expect("4 bytes")) as usize;
                if body.len() != n * 4 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response length mismatch",
                    ));
                }
                Reply::Logits(
                    body.chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
                        .collect(),
                )
            }
            STATUS_SHED => Reply::Shed(String::from_utf8_lossy(body).into_owned()),
            _ => Reply::Refused(String::from_utf8_lossy(body).into_owned()),
        };
        Ok((reply, trace_id))
    }

    /// Runs inference on one flattened image.
    ///
    /// # Errors
    ///
    /// Returns socket-level I/O errors; a shutdown-time goodbye frame
    /// surfaces as [`io::ErrorKind::ConnectionAborted`].
    pub fn infer(&mut self, input: &[f32]) -> io::Result<Reply> {
        self.request(KIND_INFER, input)
    }

    /// Runs inference with tracing: the request sets [`FLAG_TRACED`] and
    /// the reply comes back with the server-assigned trace id (when the
    /// server echoed one), joinable against the server's access log.
    ///
    /// # Errors
    ///
    /// Returns socket-level I/O errors; a shutdown-time goodbye frame
    /// surfaces as [`io::ErrorKind::ConnectionAborted`].
    pub fn infer_traced(&mut self, input: &[f32]) -> io::Result<(Reply, Option<u64>)> {
        self.request_traced(KIND_INFER, input, true)
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Returns socket-level I/O errors or a server-side refusal.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(KIND_PING, &[])? {
            Reply::Logits(_) => Ok(()),
            Reply::Refused(msg) | Reply::Shed(msg) => Err(io::Error::other(msg)),
        }
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Returns socket-level I/O errors.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.request(KIND_SHUTDOWN, &[])? {
            Reply::Logits(_) => Ok(()),
            Reply::Refused(msg) | Reply::Shed(msg) => Err(io::Error::other(msg)),
        }
    }

    /// Reads one more frame and confirms it is the server's typed
    /// goodbye — what a connection receives right before the shutdown
    /// close, instead of a bare EOF.
    ///
    /// # Errors
    ///
    /// Returns socket-level I/O errors, or `InvalidData` if the next
    /// frame (when present) is not a goodbye.
    pub fn expect_goodbye(&mut self) -> io::Result<()> {
        match read_frame(&mut self.stream)? {
            Some(frame) if frame.first() == Some(&STATUS_GOODBYE) => Ok(()),
            Some(frame) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected goodbye frame, got status {:?}", frame.first()),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed without a goodbye frame",
            )),
        }
    }
}

// ---- load generator -----------------------------------------------------

/// Result of one closed-loop load run. All latency statistics are
/// per-request over the **merged** stream of every client's completed
/// requests — one population, so `median_ns == p50_ns` by construction.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// Concurrency level (number of closed-loop clients).
    pub concurrency: usize,
    /// Requests completed successfully.
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Exact per-request latency quantiles, in nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile latency in nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: u64,
}

impl LoadStats {
    /// Completed requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.requests as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Mean wall-clock nanoseconds per completed request, from the
    /// server's point of view (`elapsed / requests` — the throughput
    /// metric expressed lower-is-better for `bench_check`).
    pub fn ns_per_request(&self) -> u64 {
        if self.requests == 0 {
            u64::MAX
        } else {
            (self.elapsed.as_nanos() / u128::from(self.requests)) as u64
        }
    }

    /// Per-request median latency over the merged stream — identical to
    /// [`LoadStats::p50_ns`]; kept as a named accessor so snapshot
    /// writers can't accidentally mix populations again.
    pub fn median_ns(&self) -> u64 {
        self.p50_ns
    }
}

/// Builds a [`LoadStats`] from a merged per-request latency stream.
/// Callers sort nothing; quantiles and the mean are all computed here,
/// over the same population.
pub fn stats_from_latencies(
    concurrency: usize,
    mut latencies: Vec<u64>,
    errors: u64,
    shed: u64,
    elapsed: Duration,
) -> LoadStats {
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    let mean = if latencies.is_empty() {
        0
    } else {
        (latencies.iter().map(|&v| u128::from(v)).sum::<u128>() / latencies.len() as u128) as u64
    };
    LoadStats {
        concurrency,
        requests: latencies.len() as u64,
        errors,
        shed,
        elapsed,
        p50_ns: quantile(0.50),
        p90_ns: quantile(0.90),
        p99_ns: quantile(0.99),
        mean_ns: mean,
    }
}

/// A traced load run: the merged latency statistics plus the server's
/// trace ids for every successfully answered request, for joining
/// client-side latencies against the server's access-log records.
#[derive(Debug, Clone)]
pub struct TracedLoad {
    /// The merged closed-loop statistics (as [`load_generate`]).
    pub stats: LoadStats,
    /// Server-assigned trace ids of the OK responses, in no particular
    /// order (one per counted request when the server echoes ids).
    pub trace_ids: Vec<u64>,
}

/// Runs `concurrency` closed-loop clients, each issuing
/// `requests_per_client` inference requests back-to-back, and merges the
/// exact latency distribution.
///
/// # Errors
///
/// Returns the first socket-level failure any client hits.
pub fn load_generate(
    addr: SocketAddr,
    concurrency: usize,
    requests_per_client: usize,
    input_len: usize,
) -> io::Result<LoadStats> {
    Ok(run_load(addr, concurrency, requests_per_client, input_len, false)?.stats)
}

/// [`load_generate`] with [`FLAG_TRACED`] set on every request,
/// additionally collecting the server-assigned trace ids so callers can
/// join against the server's access log for per-stage attribution.
///
/// # Errors
///
/// Returns the first socket-level failure any client hits.
pub fn load_generate_traced(
    addr: SocketAddr,
    concurrency: usize,
    requests_per_client: usize,
    input_len: usize,
) -> io::Result<TracedLoad> {
    run_load(addr, concurrency, requests_per_client, input_len, true)
}

fn run_load(
    addr: SocketAddr,
    concurrency: usize,
    requests_per_client: usize,
    input_len: usize,
    traced: bool,
) -> io::Result<TracedLoad> {
    let started = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..concurrency {
        handles.push(std::thread::spawn(
            move || -> io::Result<(Vec<u64>, Vec<u64>, u64, u64)> {
                let mut client = Client::connect(addr)?;
                // deterministic per-worker input stream (cheap LCG)
                let mut state = 0x9E3779B97F4A7C15u64 ^ (worker as u64) << 32;
                let mut latencies = Vec::with_capacity(requests_per_client);
                let mut trace_ids = Vec::new();
                let mut errors = 0u64;
                let mut shed = 0u64;
                let mut input = vec![0f32; input_len];
                for _ in 0..requests_per_client {
                    for slot in input.iter_mut() {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        *slot = ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
                    }
                    let sent = Instant::now();
                    let (reply, trace_id) = if traced {
                        client.infer_traced(&input)?
                    } else {
                        (client.infer(&input)?, None)
                    };
                    match reply {
                        Reply::Logits(_) => {
                            latencies
                                .push(u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX));
                            if let Some(id) = trace_id {
                                trace_ids.push(id);
                            }
                        }
                        Reply::Refused(_) => errors += 1,
                        Reply::Shed(_) => shed += 1,
                    }
                }
                Ok((latencies, trace_ids, errors, shed))
            },
        ));
    }
    let mut latencies = Vec::new();
    let mut trace_ids = Vec::new();
    let mut errors = 0u64;
    let mut shed = 0u64;
    for handle in handles {
        let (worker_latencies, worker_traces, worker_errors, worker_shed) = handle
            .join()
            .map_err(|_| io::Error::other("load worker panicked"))??;
        latencies.extend(worker_latencies);
        trace_ids.extend(worker_traces);
        errors += worker_errors;
        shed += worker_shed;
    }
    let elapsed = started.elapsed();
    Ok(TracedLoad {
        stats: stats_from_latencies(concurrency, latencies, errors, shed, elapsed),
        trace_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{CompileOptions, CompiledVgg};
    use adq_nn::{QuantModel, Vgg};
    use adq_quant::BitWidth;
    use adq_tensor::init;

    fn compiled_tiny() -> Arc<CompiledVgg> {
        let mut model = Vgg::tiny(3, 8, 4, 99);
        for (i, bits) in [8u32, 4, 8, 8].into_iter().enumerate() {
            model.set_bits_of(i, Some(BitWidth::new(bits).unwrap()));
        }
        let mut r = init::rng(100);
        let calibration = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut r);
        Arc::new(CompiledVgg::compile(&model, &calibration, CompileOptions::default()).unwrap())
    }

    #[test]
    fn parse_rejects_malformed_payloads() {
        assert!(parse_request(&[]).is_none());
        assert!(parse_request(&[1; 5]).is_none());
        // n claims 2 floats but body has 1
        let mut p = vec![KIND_INFER];
        p.extend_from_slice(&1u64.to_le_bytes());
        p.extend_from_slice(&2u32.to_le_bytes());
        p.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(parse_request(&p).is_none());
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let mut reader = FrameReader::default();
        let payload = b"hello frame";
        let mut wire = u32::to_le_bytes(payload.len() as u32).to_vec();
        wire.extend_from_slice(payload);
        // feed byte by byte: no frame until the last byte lands
        for &b in &wire[..wire.len() - 1] {
            reader.push(&[b]);
            assert!(reader.next_frame().unwrap().is_none());
        }
        reader.push(&wire[wire.len() - 1..]);
        assert_eq!(reader.next_frame().unwrap().unwrap(), payload);
        assert!(reader.next_frame().unwrap().is_none());

        // two frames in one push both come out
        reader.push(&wire);
        reader.push(&wire);
        assert_eq!(reader.next_frame().unwrap().unwrap(), payload);
        assert_eq!(reader.next_frame().unwrap().unwrap(), payload);

        // an oversized length prefix is an error, not an allocation
        let mut oversized = FrameReader::default();
        oversized.push(&u32::to_le_bytes(u32::MAX));
        assert!(oversized.next_frame().is_err());
    }

    #[test]
    fn merged_stream_median_equals_p50() {
        let stats = stats_from_latencies(
            4,
            vec![900, 100, 500, 300, 700],
            0,
            0,
            Duration::from_millis(10),
        );
        assert_eq!(stats.median_ns(), stats.p50_ns);
        assert_eq!(stats.p50_ns, 500);
        assert_eq!(stats.p99_ns, 900);
        assert_eq!(stats.mean_ns, 500);
        assert_eq!(stats.requests, 5);
    }

    #[test]
    fn serve_roundtrip_batches_and_shuts_down() {
        let model = compiled_tiny();
        let input_len = model.input_len();
        let classes = ServeModel::classes(model.as_ref());
        let mut server = Server::bind(
            "127.0.0.1:0",
            Arc::<CompiledVgg>::clone(&model) as Arc<dyn ServeModel>,
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // responses must match a direct batched model run exactly
        let mut r = init::rng(7);
        let images = init::normal(&[3, 3, 8, 8], 0.0, 1.0, &mut r);
        let direct = CompiledVgg::run(&model, &images);
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        for i in 0..3 {
            let row = &images.data()[i * input_len..(i + 1) * input_len];
            let logits = client.infer(row).unwrap().into_result().unwrap();
            assert_eq!(logits.len(), classes);
            assert_eq!(logits, &direct.data()[i * classes..(i + 1) * classes]);
        }

        // wrong input length is a protocol-level error, not a hang
        let err = client
            .infer(&[1.0, 2.0])
            .unwrap()
            .into_result()
            .unwrap_err();
        assert!(err.contains("length"), "unexpected error: {err}");

        // concurrent clients coalesce into batches
        let stats = load_generate(addr, 4, 10, input_len).unwrap();
        assert_eq!(stats.requests, 40);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.shed, 0);
        assert!(stats.p99_ns >= stats.p50_ns);
        let sizes = metrics::global()
            .histogram_with_bounds("serve.batch_size", &[1, 2, 4, 8, 16, 32, 64, 128]);
        assert!(sizes.count() > 0, "no executor recorded batches");

        // remote shutdown drains, says goodbye, and stops every thread
        client.shutdown_server().unwrap();
        client.expect_goodbye().unwrap();
        server.wait();
        assert!(server.shutting_down());
    }

    #[test]
    fn replicated_server_answers_correctly_under_concurrency() {
        let model = compiled_tiny();
        let input_len = model.input_len();
        let classes = ServeModel::classes(model.as_ref());
        let mut server = Server::bind(
            "127.0.0.1:0",
            Arc::<CompiledVgg>::clone(&model) as Arc<dyn ServeModel>,
            ServeConfig {
                replicas: 2,
                conn_workers: 2,
                max_batch: 2,
                max_wait: Duration::from_micros(200),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // every response must equal the model's own single-image run —
        // replicas share frozen weights/ranges, so batch composition and
        // replica assignment must not change results
        let mut r = init::rng(11);
        let images = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut r);
        let direct = CompiledVgg::run(&model, &images);
        let mut workers = Vec::new();
        for w in 0..4usize {
            let row = images.data()[w * input_len..(w + 1) * input_len].to_vec();
            let want = direct.data()[w * classes..(w + 1) * classes].to_vec();
            workers.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..8 {
                    let got = client.infer(&row).unwrap().into_result().unwrap();
                    assert_eq!(got, want, "replica answered with wrong logits");
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        // both replica histograms exist; at least one ran batches
        let r0 = metrics::global().histogram("serve.replica0.batch_run_ns");
        let r1 = metrics::global().histogram("serve.replica1.batch_run_ns");
        assert!(r0.count() + r1.count() > 0, "no replica recorded a batch");
        assert_eq!(metrics::global().gauge("serve.replicas").get(), 2.0);

        server.shutdown();
        assert!(server.shutting_down());
    }

    #[test]
    fn local_shutdown_joins_threads() {
        let model = compiled_tiny();
        let mut server = Server::bind(
            "127.0.0.1:0",
            model as Arc<dyn ServeModel>,
            ServeConfig::default(),
        )
        .unwrap();
        server.shutdown();
        assert!(server.shutting_down());
    }
}
