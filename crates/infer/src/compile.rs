//! Lowering a trained [`Vgg`] into a self-contained [`CompiledVgg`]:
//! BN-folded weights quantized at each layer's trained bit-width, packed
//! into the bit-width's storage container, plus the frozen requantization
//! parameters the integer kernels need between layers.
//!
//! This extends the float-simulated lowering in `adq-core`'s `deploy`
//! module with a datapath that executes real integer arithmetic through
//! [`crate::qgemm`]. The affine algebra is the same one the PIM
//! simulation uses: for uniform affine quantizers `x = x_min + c·s`,
//!
//! ```text
//! Σ fq(w)·fq(a) = s_w·s_a·Σ c_w·c_a
//!               + w_min·s_a·Σ c_a + a_min·s_w·Σ c_w + n·w_min·a_min
//! ```
//!
//! so each output needs one wide integer dot product (the GEMM) plus the
//! cheap per-row code sums [`PackedMatrix`] precomputes. One deliberate
//! difference from the PIM path: convolution padding is quantized like
//! any other activation (its code is `quantize(0.0)`, the zero point), so
//! `n` is the full fan-in — the convention of real integer engines, which
//! pad the code matrix with the zero point rather than skipping taps.
//! The residual against exact-zero padding is below one activation
//! quantization step per padded tap; argmax-level agreement with the
//! float-simulated deployment is enforced by `tests/golden_equivalence.rs`.
//!
//! Activation quantizers are **calibrated post-training**: compilation
//! runs a calibration batch through the integer engine itself, fits each
//! layer's input range at the carried precision, and freezes it. This
//! replaces the per-batch range fitting the training-time simulation uses
//! — a server cannot re-fit ranges per request batch without making
//! results batch-composition-dependent.

use adq_nn::{MaxPool2d, QuantModel, Vgg};
use adq_quant::{BitWidth, Encoder, HwPrecision, QuantError, Quantizer};
use adq_telemetry::metrics;
use adq_tensor::{Conv2dGeom, Tensor};

use crate::qgemm::{qgemm, Container, PackedMatrix};

/// Why a model could not be lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A layer has no trained bit-width and [`CompileOptions`] forbids the
    /// 16-bit fallback.
    Unquantized {
        /// Name of the offending layer.
        layer: String,
    },
    /// Weight or activation quantization failed (empty / non-finite data).
    Quant(QuantError),
    /// The calibration batch does not match the model's input shape.
    Shape(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unquantized { layer } => {
                write!(f, "layer '{layer}' has no trained bit-width")
            }
            CompileError::Quant(e) => write!(f, "quantization failed: {e}"),
            CompileError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<QuantError> for CompileError {
    fn from(e: QuantError) -> Self {
        CompileError::Quant(e)
    }
}

/// Lowering policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// When `true` (the default, matching `deploy.rs`), layers without a
    /// trained bit-width fall back to 16-bit and bump the
    /// `infer.compile.unquantized_fallback` counter; when `false` they
    /// fail with [`CompileError::Unquantized`].
    pub allow_unquantized: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            allow_unquantized: true,
        }
    }
}

fn layer_bits(
    name: &str,
    bits: Option<BitWidth>,
    options: CompileOptions,
) -> Result<BitWidth, CompileError> {
    match bits {
        Some(b) => Ok(b),
        None if options.allow_unquantized => {
            metrics::global()
                .counter("infer.compile.unquantized_fallback")
                .inc();
            Ok(BitWidth::SIXTEEN)
        }
        None => Err(CompileError::Unquantized {
            layer: name.to_string(),
        }),
    }
}

/// A frozen activation quantizer at a carried precision; degenerate
/// calibration data falls back to the point range (same convention as
/// `deploy.rs`).
fn frozen_act_quantizer(bits: BitWidth, data: &[f32]) -> Quantizer {
    Quantizer::fit(bits, data).unwrap_or_else(|_| Quantizer::new(bits, Default::default()))
}

/// One lowered convolution layer: packed BN-folded weight codes plus the
/// requantization constants of the affine expansion.
#[derive(Debug, Clone)]
pub struct CompiledConv {
    geom: Conv2dGeom,
    /// Packed weight codes, `[O, I·p·p]`.
    weights: PackedMatrix,
    weight_q: Quantizer,
    /// Frozen quantizer for this layer's *input* activations.
    act_q: Quantizer,
    bias: Vec<f32>,
    precision: HwPrecision,
    container: Container,
    /// Whether a 2×2 max-pool follows.
    pool: bool,
}

/// The lowered classifier head.
#[derive(Debug, Clone)]
pub struct CompiledLinear {
    in_features: usize,
    out_features: usize,
    weights: PackedMatrix,
    weight_q: Quantizer,
    act_q: Quantizer,
    bias: Vec<f32>,
    precision: HwPrecision,
    container: Container,
}

/// A trained [`Vgg`] lowered to bit-packed integer inference — weights
/// folded, quantized, and packed; activation ranges calibrated and frozen.
/// Self-contained: holds no reference to the training model and is `Send +
/// Sync`, so a server can share it behind an `Arc`.
#[derive(Debug, Clone)]
pub struct CompiledVgg {
    convs: Vec<CompiledConv>,
    head: CompiledLinear,
    classes: usize,
    in_channels: usize,
    input_hw: usize,
}

impl CompiledVgg {
    /// Lowers `model`, calibrating activation ranges on `calibration`
    /// (shape `[N, C, H, W]` matching the model input).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] on unquantized layers (strict mode only),
    /// non-finite weights, or a calibration shape mismatch.
    pub fn compile(
        model: &Vgg,
        calibration: &Tensor,
        options: CompileOptions,
    ) -> Result<Self, CompileError> {
        let stats = model.layer_stats();
        let first_geom = model.conv_blocks()[0].geom();
        let input_hw = stats[0].input_hw;
        if calibration.rank() != 4
            || calibration.dims()[1] != first_geom.in_channels
            || calibration.dims()[2] != input_hw
            || calibration.dims()[3] != input_hw
        {
            return Err(CompileError::Shape(format!(
                "calibration batch {:?} does not match model input [N, {}, {input_hw}, {input_hw}]",
                calibration.dims(),
                first_geom.in_channels
            )));
        }

        let mut convs = Vec::new();
        let mut x = calibration.clone();
        // network input is carried at the accelerator's full width
        let mut carry_bits = BitWidth::SIXTEEN;
        for (index, block) in model.conv_blocks().iter().enumerate() {
            let bits = layer_bits(block.name(), block.bits(), options)?;
            let (weight, bias) = block.folded_weight_bias();
            let weight_q = Quantizer::fit(bits, weight.data())?;
            let act_q = frozen_act_quantizer(carry_bits, x.data());
            let container = Container::for_max_code(weight_q.bits().max_code())
                .join(Container::for_max_code(act_q.bits().max_code()));
            let geom = block.geom();
            let fan_in = geom.in_channels * geom.kernel * geom.kernel;
            let layer = CompiledConv {
                geom,
                weights: PackedMatrix::pack_rows(
                    weight.data(),
                    geom.out_channels,
                    fan_in,
                    &weight_q,
                    container,
                ),
                weight_q,
                act_q,
                bias,
                precision: HwPrecision::legalize(bits),
                container,
                pool: model.pool_after(index),
            };
            // calibrate the next layer on this layer's integer output;
            // encoding through the layer's own quantizer is exactly what
            // the serving chain feeds it
            let codes = encode_all(x.data(), &layer.act_q);
            let dims = [x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]];
            x = layer.run_calibrate(&codes, dims);
            carry_bits = bits;
            convs.push(layer);
        }

        let head = model.head();
        let bits = layer_bits(head.name(), head.bits(), options)?;
        let linear = head.linear();
        let weight_q = Quantizer::fit(bits, linear.weight.value.data())?;
        let n = x.dims()[0];
        let features = x.len() / n.max(1);
        let flat = x.reshaped(&[n, features]).expect("flatten preserves count");
        let act_q = frozen_act_quantizer(carry_bits, flat.data());
        let container = Container::for_max_code(weight_q.bits().max_code())
            .join(Container::for_max_code(act_q.bits().max_code()));
        let head = CompiledLinear {
            in_features: head.in_features(),
            out_features: head.out_features(),
            weights: PackedMatrix::pack_rows(
                linear.weight.value.data(),
                head.out_features(),
                head.in_features(),
                &weight_q,
                container,
            ),
            weight_q,
            act_q,
            bias: linear.bias.value.data().to_vec(),
            precision: HwPrecision::legalize(bits),
            container,
        };

        Ok(Self {
            convs,
            head,
            classes: model.classes(),
            in_channels: first_geom.in_channels,
            input_hw,
        })
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Expected input shape as `(channels, height/width)`.
    pub fn input_shape(&self) -> (usize, usize) {
        (self.in_channels, self.input_hw)
    }

    /// Flattened input length of one image.
    pub fn input_len(&self) -> usize {
        self.in_channels * self.input_hw * self.input_hw
    }

    /// Hardware precisions the layers execute at, convs then classifier.
    pub fn precisions(&self) -> Vec<HwPrecision> {
        let mut out: Vec<HwPrecision> = self.convs.iter().map(|c| c.precision).collect();
        out.push(self.head.precision);
        out
    }

    /// Storage containers per layer (diagnostics / size accounting).
    pub fn containers(&self) -> Vec<Container> {
        let mut out: Vec<Container> = self.convs.iter().map(|c| c.container).collect();
        out.push(self.head.container);
        out
    }

    /// Total packed weight bytes across all layers.
    pub fn packed_weight_bytes(&self) -> usize {
        self.convs
            .iter()
            .map(|c| c.weights.packed_bytes())
            .sum::<usize>()
            + self.head.weights.packed_bytes()
    }

    /// Integer-only inference: logits `[N, classes]`.
    ///
    /// The whole network runs as a fused requantization chain — the input
    /// is encoded once, every conv consumes and emits integer codes in
    /// the next layer's code space, and only the head's logits come back
    /// as floats.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not `[N, C, H, W]` matching the model.
    pub fn run(&self, images: &Tensor) -> Tensor {
        assert_eq!(images.rank(), 4, "input must be NCHW");
        let d = images.dims();
        let mut dims = [d[0], d[1], d[2], d[3]];
        let mut codes = encode_all(images.data(), &self.convs[0].act_q);
        for (i, conv) in self.convs.iter().enumerate() {
            let next_q = match self.convs.get(i + 1) {
                Some(next) => &next.act_q,
                None => &self.head.act_q,
            };
            (codes, dims) = conv.run_codes(&codes, dims, &next_q.encoder());
        }
        let [n, c, h, w] = dims;
        self.head.run_codes(&codes, n, c * h * w)
    }
}

/// Encodes a float slice into a `u16` code buffer — the entry into the
/// fused code chain (network input, or calibration activations).
fn encode_all(values: &[f32], quantizer: &Quantizer) -> Vec<u16> {
    let enc = quantizer.encoder();
    values.iter().map(|&v| enc.encode(v) as u16).collect()
}

/// 2×2 stride-2 max-pool on a code tensor. Quantization codes are
/// monotone in the values they represent, so pooling codes is exactly
/// pooling values followed by encoding.
fn maxpool2_codes(codes: &[u16], dims: [usize; 4]) -> (Vec<u16>, [usize; 4]) {
    let [n, c, h, w] = dims;
    assert!(
        h % 2 == 0 && w % 2 == 0,
        "spatial dims {h}x{w} not divisible by pool window 2"
    );
    let (oh, ow) = (h / 2, w / 2);
    let mut out = vec![0u16; n * c * oh * ow];
    for plane in 0..n * c {
        let src = &codes[plane * h * w..(plane + 1) * h * w];
        let dst = &mut out[plane * oh * ow..(plane + 1) * oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let i0 = (oy * 2) * w + ox * 2;
                dst[oy * ow + ox] = src[i0]
                    .max(src[i0 + 1])
                    .max(src[i0 + w])
                    .max(src[i0 + w + 1]);
            }
        }
    }
    (out, [n, c, oh, ow])
}

impl CompiledConv {
    /// Gathers the transposed `[M, fan_in]` code matrix straight from the
    /// NCHW input codes — integer im2col. Out-of-bounds taps get the
    /// activation quantizer's zero-point code (`quantize(0.0)`), matching
    /// what quantizing a zero-padded float buffer would produce.
    fn gather_cols(&self, codes: &[u16], dims: [usize; 4]) -> PackedMatrix {
        let [n, c, h, w] = dims;
        assert_eq!(
            c, self.geom.in_channels,
            "channel mismatch: input {dims:?} vs geom {:?}",
            self.geom
        );
        let (oh, ow) = (self.geom.output_size(h), self.geom.output_size(w));
        let p = self.geom.kernel;
        let stride = self.geom.stride;
        let padding = self.geom.padding;
        let fan_in = c * p * p;
        let m = n * oh * ow;
        let pad_code = self.act_q.quantize(0.0) as u16;
        let mut staged = vec![0u16; m * fan_in];
        let mut idx = 0;
        for ni in 0..n {
            for ohi in 0..oh {
                for owi in 0..ow {
                    for ci in 0..c {
                        let in_base = (ni * c + ci) * h * w;
                        for kh in 0..p {
                            // underflow wraps far past `h`, folding both
                            // padding sides into one bounds check
                            let ih = (ohi * stride + kh).wrapping_sub(padding);
                            if ih >= h {
                                staged[idx..idx + p].fill(pad_code);
                                idx += p;
                                continue;
                            }
                            let row = in_base + ih * w;
                            for kw in 0..p {
                                let iw = (owi * stride + kw).wrapping_sub(padding);
                                staged[idx] = if iw < w { codes[row + iw] } else { pad_code };
                                idx += 1;
                            }
                        }
                    }
                }
            }
        }
        PackedMatrix::from_codes(&staged, m, fan_in, self.container)
    }

    /// Shared GEMM + requantization core: computes every pre-pool output
    /// as a bias-added, ReLU-clamped float and hands it to `sink` with
    /// its NCHW index.
    fn forward_into(
        &self,
        codes: &[u16],
        dims: [usize; 4],
        mut sink: impl FnMut(usize, f32),
    ) -> [usize; 4] {
        let [n, _, h, w] = dims;
        let acts = self.gather_cols(codes, dims);
        let (oh, ow) = (self.geom.output_size(h), self.geom.output_size(w));
        let spatial = oh * ow;
        let oc = self.geom.out_channels;
        let fan_in = acts.k();
        // requantization constants of the affine expansion
        let s_w = f64::from(self.weight_q.step());
        let s_a = f64::from(self.act_q.step());
        let w_min = f64::from(self.weight_q.range().min());
        let a_min = f64::from(self.act_q.range().min());
        let taps = fan_in as f64;
        let sum_ca = acts.row_sums();
        let sum_cw = self.weights.row_sums();
        qgemm(&acts, &self.weights, |mi, oi, acc| {
            let value = s_w * s_a * acc as f64
                + w_min * s_a * sum_ca[mi] as f64
                + a_min * s_w * sum_cw[oi] as f64
                + taps * w_min * a_min
                + f64::from(self.bias[oi]);
            let (ni, s) = (mi / spatial, mi % spatial);
            // fused ReLU, delivered in NCHW order
            sink((ni * oc + oi) * spatial + s, (value as f32).max(0.0));
        });
        [n, oc, oh, ow]
    }

    /// Serving path: consumes input codes, emits the *next* layer's input
    /// codes directly (fused requantization chain — no float tensor
    /// materializes between layers). Max-pooling runs on codes.
    fn run_codes(
        &self,
        codes: &[u16],
        dims: [usize; 4],
        next_enc: &Encoder,
    ) -> (Vec<u16>, [usize; 4]) {
        let mut out = Vec::new();
        let out_dims = {
            let [n, _, h, w] = dims;
            let (oh, ow) = (self.geom.output_size(h), self.geom.output_size(w));
            out.resize(n * self.geom.out_channels * oh * ow, 0u16);
            self.forward_into(codes, dims, |i, v| out[i] = next_enc.encode(v) as u16)
        };
        if self.pool {
            maxpool2_codes(&out, out_dims)
        } else {
            (out, out_dims)
        }
    }

    /// Calibration path: same integer datapath, but the requantized
    /// activations are kept as floats so the *next* layer's quantizer can
    /// be fitted on them before its encoder exists.
    fn run_calibrate(&self, codes: &[u16], dims: [usize; 4]) -> Tensor {
        let mut staged = Vec::new();
        let out_dims = {
            let [n, _, h, w] = dims;
            let (oh, ow) = (self.geom.output_size(h), self.geom.output_size(w));
            staged.resize(n * self.geom.out_channels * oh * ow, 0f32);
            self.forward_into(codes, dims, |i, v| staged[i] = v)
        };
        let mut out = Tensor::from_vec(staged, &out_dims).expect("sized above");
        if self.pool {
            let mut pool = MaxPool2d::new(2);
            out = pool.forward(&out);
        }
        out
    }
}

impl CompiledLinear {
    /// Runs the head on flattened `[N, in]` input codes, producing float
    /// logits — the only float tensor the serving chain materializes.
    fn run_codes(&self, codes: &[u16], n: usize, features: usize) -> Tensor {
        assert_eq!(features, self.in_features, "feature mismatch");
        let acts = PackedMatrix::from_codes(codes, n, self.in_features, self.container);
        let s_w = f64::from(self.weight_q.step());
        let s_a = f64::from(self.act_q.step());
        let w_min = f64::from(self.weight_q.range().min());
        let a_min = f64::from(self.act_q.range().min());
        let taps = self.in_features as f64;
        let sum_ca = acts.row_sums();
        let sum_cw = self.weights.row_sums();
        let mut out = Tensor::zeros(&[n, self.out_features]);
        {
            let o = self.out_features;
            let dst = out.data_mut();
            qgemm(&acts, &self.weights, |ni, oi, acc| {
                dst[ni * o + oi] = (s_w * s_a * acc as f64
                    + w_min * s_a * sum_ca[ni] as f64
                    + a_min * s_w * sum_cw[oi] as f64
                    + taps * w_min * a_min
                    + f64::from(self.bias[oi])) as f32;
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adq_nn::QuantModel;
    use adq_tensor::init;

    fn quantized_tiny(bits: &[u32]) -> Vgg {
        let mut model = Vgg::tiny(3, 8, 4, 42);
        for (i, &b) in bits.iter().enumerate() {
            model.set_bits_of(i, Some(BitWidth::new(b).unwrap()));
        }
        model
    }

    #[test]
    fn compile_and_run_shapes() {
        let model = quantized_tiny(&[8, 4, 2, 8]);
        let mut r = init::rng(1);
        let images = init::normal(&[3, 3, 8, 8], 0.0, 1.0, &mut r);
        let compiled = CompiledVgg::compile(&model, &images, CompileOptions::default()).unwrap();
        let logits = compiled.run(&images);
        assert_eq!(logits.dims(), &[3, 4]);
        assert!(logits.data().iter().all(|v| v.is_finite()));
        assert_eq!(compiled.precisions().len(), 4);
        assert_eq!(compiled.input_shape(), (3, 8));
        assert_eq!(compiled.input_len(), 3 * 8 * 8);
    }

    #[test]
    fn containers_snap_to_the_hw_grid() {
        let model = quantized_tiny(&[2, 4, 8, 16]);
        let mut r = init::rng(2);
        let images = init::normal(&[2, 3, 8, 8], 0.0, 1.0, &mut r);
        let compiled = CompiledVgg::compile(&model, &images, CompileOptions::default()).unwrap();
        // first conv reads SIXTEEN-bit network input, so its container is
        // U16 regardless of its 2-bit weights; conv2 reads 2-bit codes
        // with 4-bit weights (Nib); conv3 reads 4-bit with 8-bit (U8);
        // the head reads 8-bit with 16-bit weights (U16)
        assert_eq!(
            compiled.containers(),
            vec![
                Container::U16,
                Container::Nib,
                Container::U8,
                Container::U16
            ]
        );
        assert_eq!(
            compiled.precisions(),
            vec![
                HwPrecision::B2,
                HwPrecision::B4,
                HwPrecision::B8,
                HwPrecision::B16
            ]
        );
        assert!(compiled.packed_weight_bytes() > 0);
    }

    #[test]
    fn strict_mode_rejects_unquantized_layers() {
        let model = Vgg::tiny(3, 8, 4, 7); // no bits assigned
        let images = Tensor::zeros(&[1, 3, 8, 8]);
        let strict = CompileOptions {
            allow_unquantized: false,
        };
        match CompiledVgg::compile(&model, &images, strict) {
            Err(CompileError::Unquantized { layer }) => assert_eq!(layer, "conv1"),
            other => panic!("expected Unquantized error, got {other:?}"),
        }
    }

    #[test]
    fn lenient_mode_counts_fallbacks() {
        let model = Vgg::tiny(3, 8, 4, 8); // no bits assigned
        let mut r = init::rng(3);
        let images = init::normal(&[2, 3, 8, 8], 0.0, 1.0, &mut r);
        let counter = metrics::global().counter("infer.compile.unquantized_fallback");
        let before = counter.get();
        let compiled = CompiledVgg::compile(&model, &images, CompileOptions::default()).unwrap();
        // 3 convs + head all fell back
        assert_eq!(counter.get() - before, 4);
        assert!(compiled.precisions().iter().all(|&p| p == HwPrecision::B16));
    }

    #[test]
    fn calibration_shape_mismatch_is_a_typed_error() {
        let model = quantized_tiny(&[8, 8, 8, 8]);
        let images = Tensor::zeros(&[1, 3, 16, 16]);
        assert!(matches!(
            CompiledVgg::compile(&model, &images, CompileOptions::default()),
            Err(CompileError::Shape(_))
        ));
    }

    #[test]
    fn inference_is_deterministic_across_runs() {
        let model = quantized_tiny(&[8, 4, 8, 8]);
        let mut r = init::rng(4);
        let images = init::normal(&[2, 3, 8, 8], 0.0, 1.0, &mut r);
        let compiled = CompiledVgg::compile(&model, &images, CompileOptions::default()).unwrap();
        let a = compiled.run(&images);
        let b = compiled.run(&images);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_of_one_matches_row_of_batch() {
        // dynamic batching must not change results: running an image alone
        // and inside a batch must produce identical logits, because the
        // quantizers are frozen (not per-batch)
        let model = quantized_tiny(&[8, 4, 2, 8]);
        let mut r = init::rng(5);
        let images = init::normal(&[3, 3, 8, 8], 0.0, 1.0, &mut r);
        let compiled = CompiledVgg::compile(&model, &images, CompileOptions::default()).unwrap();
        let batched = compiled.run(&images);
        for i in 0..3 {
            let one = images.index_axis0(i);
            let solo = compiled.run(&one.reshaped(&[1, 3, 8, 8]).unwrap());
            assert_eq!(
                solo.data(),
                &batched.data()[i * 4..(i + 1) * 4],
                "image {i}"
            );
        }
    }
}
