//! Bit-packed integer inference engine.
//!
//! `adq-infer` is the deployment endpoint of the activation-density
//! pipeline: it takes a trained, mixed-precision model and lowers it to a
//! self-contained [`CompiledVgg`] that runs on real integer arithmetic —
//! nibble-packed int4, int8 and int16 operand containers, i32/i64
//! accumulation, and per-layer affine requantization — instead of the
//! float-simulated quantization used during training and analysis.
//!
//! The crate splits into three layers:
//!
//! - [`qgemm`] — packed integer GEMM kernels. Operands are quantization
//!   *codes* in the smallest container that fits ([`qgemm::Container`]),
//!   with runtime-dispatched AVX2 bodies and bit-exact scalar references.
//! - [`compile`] — lowering. Batch-norm folding, weight quantization at
//!   each layer's trained bit-width, frozen post-training activation
//!   calibration, and the requantization chain that turns integer
//!   accumulators back into floats.
//! - [`serve`] — a scaled-out TCP serving front-end
//!   ([`serve::Server`] / [`serve::Client`]): a fixed connection-worker
//!   pool multiplexes sockets, replica executors share the packed
//!   weights and run batches concurrently, and a bounded queue with
//!   admission control ([`serve::OverloadPolicy`]) sheds load with typed
//!   wire frames instead of growing without bound.

pub mod compile;
pub mod qgemm;
pub mod serve;

pub use compile::{CompileError, CompileOptions, CompiledVgg};
pub use qgemm::{Container, PackedMatrix};
pub use serve::{
    load_generate, load_generate_traced, stats_from_latencies, Client, LoadStats, OverloadPolicy,
    Reply, ServeConfig, ServeModel, Server, TracedLoad,
};
