//! Hierarchical tracing spans with lock-cheap per-thread buffering.
//!
//! A [`SpanGuard`] measures one region of work: it captures a monotonic
//! start time on construction and, on drop, pushes a finished
//! [`SpanRecord`] — id, parent id, thread id, start/end nanoseconds, and
//! structured attributes — into a buffer owned by the recording thread.
//! Parent/child structure is tracked through a thread-local "current
//! span" cell, so nested guards on one thread link up automatically;
//! work fanned out to rayon workers passes the parent id explicitly via
//! [`child_span_with`] (worker threads have no ambient current span).
//!
//! Buffers register themselves in a process-wide list on first use, so
//! [`drain`] (or [`drain_into`], which forwards each record to a
//! [`TelemetrySink`] as a [`TelemetryEvent::SpanClosed`] event) can
//! collect spans from every thread that ever recorded, including scoped
//! rayon workers that have since exited. The hot path touches only the
//! recording thread's own mutex — uncontended except while a drain is
//! in progress — plus one relaxed atomic load for the level check.
//!
//! Tracing is off unless the `ADQ_TRACE` environment variable (read
//! once, like `ADQ_PAR_FLOPS`) or [`set_level`] enables it:
//!
//! * `0` — disabled; every instrumentation site costs one relaxed load.
//! * `1` — controller phases, epochs, batches/microbatches, and GEMMs
//!   large enough to clear the blocked-kernel threshold.
//! * `2` — verbose: additionally GEMM macro-tiles, `im2col`, and
//!   fake-quantize passes. Expect large trace files.
//!
//! Spans are observation-only by contract: enabling any level must not
//! change a run's numeric results, only its wall time.

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::alloc::{self, ThreadCounters};
use crate::event::TelemetryEvent;
use crate::sink::TelemetrySink;

/// Maximum finished spans buffered per recording thread; beyond this,
/// spans are counted in [`dropped_count`] instead of stored, so a run
/// with tracing accidentally left at level 2 degrades instead of
/// exhausting memory.
const MAX_SPANS_PER_THREAD: usize = 1 << 18;

/// Trace level sentinel meaning "not yet read from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

/// Highest meaningful trace level.
pub const LEVEL_VERBOSE: u8 = 2;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

type SharedBuffer = Arc<Mutex<Vec<SpanRecord>>>;

/// Every thread's span buffer, registered on that thread's first span.
static REGISTRY: Mutex<Vec<SharedBuffer>> = Mutex::new(Vec::new());

thread_local! {
    /// This thread's buffer (shared with [`REGISTRY`]).
    static BUFFER: OnceCell<SharedBuffer> = const { OnceCell::new() };
    /// Id of the innermost open span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// This thread's small dense id (0 = unassigned).
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// The process-wide monotonic epoch all span timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's tracing epoch.
fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The active trace level: `ADQ_TRACE` parsed once on first call
/// (invalid or absent = 0), unless overridden by [`set_level`].
pub fn level() -> u8 {
    let cached = LEVEL.load(Ordering::Relaxed);
    if cached != LEVEL_UNSET {
        return cached;
    }
    let parsed = std::env::var("ADQ_TRACE")
        .ok()
        .and_then(|raw| raw.trim().parse::<u8>().ok())
        .unwrap_or(0)
        .min(LEVEL_VERBOSE);
    // A racing first call parses the same environment, so last-write-wins
    // stores are idempotent.
    LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// Overrides the trace level (tests and binaries; wins over `ADQ_TRACE`).
pub fn set_level(level: u8) {
    LEVEL.store(level.min(LEVEL_VERBOSE), Ordering::Relaxed);
}

/// Whether phase-level tracing (level ≥ 1) is active.
#[inline]
pub fn enabled() -> bool {
    level() >= 1
}

/// Whether verbose tile/kernel tracing (level ≥ 2) is active.
#[inline]
pub fn verbose() -> bool {
    level() >= LEVEL_VERBOSE
}

/// This thread's dense id, assigned on first use (1-based; the order
/// threads first record in, not OS thread ids).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|cell| {
        let id = cell.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        cell.set(id);
        id
    })
}

/// Id of the innermost open span on this thread (0 = none). Capture this
/// before fanning work out to other threads and hand it to
/// [`child_span_with`] so cross-thread children nest correctly.
pub fn current_span_id() -> u64 {
    CURRENT.with(Cell::get)
}

/// Spans dropped so far because a thread buffer hit its cap.
pub fn dropped_count() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Returns and resets the dropped-span counter (call when exporting).
pub fn take_dropped() -> u64 {
    DROPPED.swap(0, Ordering::Relaxed)
}

/// A structured attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integers (sizes, indices, bit-widths).
    U64(u64),
    /// Signed integers.
    I64(i64),
    /// Floating-point measurements.
    F64(f64),
    /// Short labels.
    Str(String),
}

impl AttrValue {
    /// The JSON form used in [`TelemetryEvent::SpanClosed`] args.
    fn to_json(&self) -> serde_json::Value {
        match self {
            AttrValue::U64(v) => serde_json::Value::U64(*v),
            AttrValue::I64(v) => serde_json::Value::I64(*v),
            AttrValue::F64(v) => serde_json::Value::F64(*v),
            AttrValue::Str(s) => serde_json::Value::Str(s.clone()),
        }
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One finished span, as buffered per thread and drained to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the process (1-based).
    pub id: u64,
    /// Id of the enclosing span (0 = root).
    pub parent: u64,
    /// Dense id of the recording thread (see [`thread_id`]).
    pub thread: u64,
    /// Static span name, dot-separated by subsystem (`adq.iteration`,
    /// `nn.microbatch`, `tensor.matmul`, ...).
    pub name: &'static str,
    /// Monotonic start, nanoseconds since the process tracing epoch.
    pub start_ns: u64,
    /// Monotonic end, nanoseconds since the process tracing epoch.
    pub end_ns: u64,
    /// Structured attributes (layer index, bit-width, GEMM m/n/k, ...).
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Wall time covered by the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// The event form written to telemetry sinks.
    pub fn to_event(&self) -> TelemetryEvent {
        let args = self
            .attrs
            .iter()
            .map(|(key, value)| ((*key).to_string(), value.to_json()))
            .collect();
        TelemetryEvent::SpanClosed {
            id: self.id,
            parent: self.parent,
            thread: self.thread,
            name: self.name.to_string(),
            start_ns: self.start_ns,
            end_ns: self.end_ns,
            args: serde_json::Value::Map(args),
        }
    }
}

/// Opens a span named `name` under this thread's current span.
///
/// Returns a disabled no-op guard when tracing is off, so call sites can
/// stay unconditional; gate only when building attributes would allocate.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::open(name, current_span_id(), Vec::new())
}

/// Opens a span with attributes under this thread's current span.
///
/// Check [`enabled`]/[`verbose`] before building `attrs` so disabled
/// tracing costs no allocation.
pub fn span_with(name: &'static str, attrs: Vec<(&'static str, AttrValue)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::open(name, current_span_id(), attrs)
}

/// Opens a span under an explicit parent id, for work fanned out to
/// threads where the parent is not the ambient current span (rayon
/// workers). The new span still becomes the worker thread's current
/// span, so deeper nesting on that thread links up normally.
pub fn child_span_with(
    parent: u64,
    name: &'static str,
    attrs: Vec<(&'static str, AttrValue)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::open(name, parent, attrs)
}

/// An RAII guard measuring one span; records on drop.
///
/// Guards must drop in reverse open order on a thread (natural lexical
/// nesting); they are not `Send`.
#[must_use = "the span closes when the guard drops; binding to `_` closes it immediately"]
pub struct SpanGuard {
    data: Option<SpanData>,
    /// `!Send`: the guard manipulates thread-local parent state.
    _not_send: std::marker::PhantomData<*const ()>,
}

struct SpanData {
    id: u64,
    parent: u64,
    /// Current-span id to restore on drop.
    prev: u64,
    thread: u64,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
    /// Thread resource counters at open, when resource tracking is on;
    /// the drop handler attaches the deltas as attributes.
    res_base: Option<ThreadCounters>,
}

impl SpanGuard {
    /// A no-op guard (tracing disabled).
    pub fn disabled() -> Self {
        SpanGuard {
            data: None,
            _not_send: std::marker::PhantomData,
        }
    }

    fn open(name: &'static str, parent: u64, attrs: Vec<(&'static str, AttrValue)>) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|cell| cell.replace(id));
        let res_base = alloc::tracking().then(alloc::thread_counters);
        SpanGuard {
            data: Some(SpanData {
                id,
                parent,
                prev,
                thread: thread_id(),
                name,
                start_ns: now_ns(),
                attrs,
                res_base,
            }),
            _not_send: std::marker::PhantomData,
        }
    }

    /// This span's id (0 when disabled); pass to [`child_span_with`] for
    /// cross-thread children.
    pub fn id(&self) -> u64 {
        self.data.as_ref().map_or(0, |d| d.id)
    }

    /// Whether this guard is recording.
    pub fn is_recording(&self) -> bool {
        self.data.is_some()
    }

    /// Attaches an attribute after opening (for values known at the end
    /// of the region, like counts). No-op when disabled.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(data) = self.data.as_mut() {
            data.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut data) = self.data.take() else {
            return;
        };
        let end_ns = now_ns();
        CURRENT.with(|cell| cell.set(data.prev));
        if let Some(base) = data.res_base.take() {
            // Deltas cover same-thread work inside the span, children
            // included; cross-thread children carry their own spans.
            let delta = alloc::thread_counters().delta_since(&base);
            data.attrs.push(("flops", AttrValue::U64(delta.flops)));
            data.attrs
                .push(("bytes_moved", AttrValue::U64(delta.bytes_moved)));
            if alloc::allocator_active() {
                data.attrs
                    .push(("alloc_bytes", AttrValue::U64(delta.alloc_bytes)));
                data.attrs
                    .push(("freed_bytes", AttrValue::U64(delta.freed_bytes)));
                data.attrs.push(("allocs", AttrValue::U64(delta.allocs)));
                // The process high-water mark as of span close; the phase
                // whose close first reports a value is where it was set.
                data.attrs
                    .push(("heap_peak_bytes", AttrValue::U64(alloc::heap_peak_bytes())));
            }
        }
        let record = SpanRecord {
            id: data.id,
            parent: data.parent,
            thread: data.thread,
            name: data.name,
            start_ns: data.start_ns,
            end_ns,
            attrs: data.attrs,
        };
        BUFFER.with(|cell| {
            let buffer = cell.get_or_init(|| {
                let shared: SharedBuffer = Arc::new(Mutex::new(Vec::new()));
                REGISTRY
                    .lock()
                    .expect("span registry poisoned")
                    .push(Arc::clone(&shared));
                shared
            });
            let mut spans = buffer.lock().expect("span buffer poisoned");
            if spans.len() < MAX_SPANS_PER_THREAD {
                spans.push(record);
            } else {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

/// Removes and returns every buffered span from every thread, ordered by
/// `(start_ns, id)` so output is chronological regardless of which
/// thread recorded what.
pub fn drain() -> Vec<SpanRecord> {
    let buffers: Vec<SharedBuffer> = REGISTRY
        .lock()
        .expect("span registry poisoned")
        .iter()
        .map(Arc::clone)
        .collect();
    let mut records = Vec::new();
    for buffer in buffers {
        records.append(&mut buffer.lock().expect("span buffer poisoned"));
    }
    records.sort_by_key(|r| (r.start_ns, r.id));
    records
}

/// Drains every buffered span into `sink` as
/// [`TelemetryEvent::SpanClosed`] events; returns how many were written.
pub fn drain_into(sink: &dyn TelemetrySink) -> usize {
    let records = drain();
    for record in &records {
        sink.record(&record.to_event());
    }
    records.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    /// Tracer state is process-global; tests serialize and drain behind
    /// the crate-wide lock (shared with the alloc tests, whose tracking
    /// toggles would otherwise inject resource attrs into spans here).
    fn tracer_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::global_test_lock()
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = tracer_lock();
        set_level(0);
        drain();
        {
            let outer = span("outer");
            assert_eq!(outer.id(), 0);
            assert!(!outer.is_recording());
            let _inner = span_with("inner", vec![("k", AttrValue::U64(1))]);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn nested_spans_link_to_their_parent() {
        let _guard = tracer_lock();
        set_level(1);
        drain();
        let (outer_id, inner_id);
        {
            let outer = span("outer");
            outer_id = outer.id();
            assert_eq!(current_span_id(), outer_id);
            {
                let inner = span("inner");
                inner_id = inner.id();
                assert_eq!(current_span_id(), inner_id);
            }
            assert_eq!(current_span_id(), outer_id);
        }
        assert_eq!(current_span_id(), 0);
        set_level(0);
        let records = drain();
        assert_eq!(records.len(), 2);
        let inner = records.iter().find(|r| r.name == "inner").expect("inner");
        let outer = records.iter().find(|r| r.name == "outer").expect("outer");
        assert_eq!(inner.id, inner_id);
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.parent, 0);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn attributes_and_late_attrs_are_kept() {
        let _guard = tracer_lock();
        set_level(1);
        drain();
        {
            let mut s = span_with("work", vec![("m", AttrValue::U64(8)), ("tag", "x".into())]);
            s.attr("items", 3usize);
        }
        set_level(0);
        let records = drain();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].attrs,
            vec![
                ("m", AttrValue::U64(8)),
                ("tag", AttrValue::Str("x".into())),
                ("items", AttrValue::U64(3)),
            ]
        );
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let _guard = tracer_lock();
        set_level(1);
        drain();
        let parent_id;
        {
            let parent = span("fanout");
            parent_id = parent.id();
            std::thread::scope(|scope| {
                for i in 0..2u64 {
                    scope.spawn(move || {
                        let _child =
                            child_span_with(parent_id, "worker", vec![("i", AttrValue::U64(i))]);
                    });
                }
            });
        }
        set_level(0);
        let records = drain();
        assert_eq!(records.len(), 3);
        let workers: Vec<_> = records.iter().filter(|r| r.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        assert!(workers.iter().all(|w| w.parent == parent_id));
        let main_thread = records
            .iter()
            .find(|r| r.name == "fanout")
            .expect("parent")
            .thread;
        // Scoped worker threads get their own dense thread ids.
        assert!(workers.iter().all(|w| w.thread != main_thread));
    }

    #[test]
    fn drain_into_writes_span_closed_events() {
        let _guard = tracer_lock();
        set_level(1);
        drain();
        {
            let _s = span_with("emit", vec![("layer", AttrValue::U64(4))]);
        }
        set_level(0);
        let sink = MemorySink::new();
        let written = drain_into(&sink);
        assert_eq!(written, 1);
        let events = sink.events();
        match &events[0] {
            TelemetryEvent::SpanClosed {
                name, args, thread, ..
            } => {
                assert_eq!(name, "emit");
                assert!(*thread >= 1);
                assert_eq!(args.get("layer").and_then(|v| v.as_u64()), Some(4));
            }
            other => panic!("unexpected event {other:?}"),
        }
        // A second drain finds nothing.
        assert_eq!(drain_into(&sink), 0);
    }

    #[test]
    fn resource_deltas_attach_as_attrs_when_tracked() {
        let _guard = tracer_lock();
        set_level(1);
        alloc::set_tracking(true);
        drain();
        {
            let _outer = span("tracked.outer");
            alloc::add_flops(100);
            {
                let _inner = span("tracked.inner");
                alloc::add_flops(23);
                alloc::add_bytes_moved(456);
            }
        }
        alloc::set_tracking(false);
        set_level(0);
        let records = drain();
        let attr = |name: &str, key: &str| {
            records
                .iter()
                .find(|r| r.name == name)
                .and_then(|r| r.attrs.iter().find(|(k, _)| *k == key))
                .map(|(_, v)| v.clone())
        };
        // The inner span sees only its own work; the outer span's delta
        // includes the same-thread child.
        assert_eq!(attr("tracked.inner", "flops"), Some(AttrValue::U64(23)));
        assert_eq!(
            attr("tracked.inner", "bytes_moved"),
            Some(AttrValue::U64(456))
        );
        assert_eq!(attr("tracked.outer", "flops"), Some(AttrValue::U64(123)));
    }

    #[test]
    fn untracked_spans_carry_no_resource_attrs() {
        let _guard = tracer_lock();
        set_level(1);
        alloc::set_tracking(false);
        drain();
        {
            let _s = span("untracked");
        }
        set_level(0);
        let records = drain();
        let rec = records
            .iter()
            .find(|r| r.name == "untracked")
            .expect("span");
        assert!(rec.attrs.iter().all(|(k, _)| *k != "flops"));
        assert!(rec.attrs.iter().all(|(k, _)| *k != "alloc_bytes"));
    }

    #[test]
    fn span_records_roundtrip_as_events() {
        let record = SpanRecord {
            id: 9,
            parent: 4,
            thread: 2,
            name: "tensor.matmul",
            start_ns: 100,
            end_ns: 350,
            attrs: vec![
                ("m", AttrValue::U64(64)),
                ("loss", AttrValue::F64(0.5)),
                ("variant", AttrValue::Str("a_bt".into())),
            ],
        };
        assert_eq!(record.duration_ns(), 250);
        let event = record.to_event();
        let line = serde_json::to_string(&event).expect("serialise");
        let back: TelemetryEvent = serde_json::from_str(&line).expect("parse");
        assert_eq!(back, event);
    }
}
