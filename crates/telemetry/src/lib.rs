//! Telemetry for the AD-quantization pipeline: structured run events,
//! pluggable sinks, and a metrics registry with hot-path timers.
//!
//! Three pieces, usable independently:
//!
//! * [`TelemetryEvent`] — a typed event per Algorithm-1 lifecycle step
//!   (run start, epochs, density measurements, saturation, bit-width
//!   re-assignment, pruning, layer removal, iteration and run completion,
//!   energy estimates), serializable as externally tagged JSON.
//! * [`TelemetrySink`] — where events go: [`JsonlSink`] (buffered file,
//!   one JSON object per line), [`ConsoleSink`] (human one-liners),
//!   [`MemorySink`] (tests), [`MultiSink`] (fan-out), and the default
//!   no-op [`NullSink`].
//! * [`MetricsRegistry`] — thread-safe counters, gauges, and fixed-bucket
//!   histograms; [`ScopedTimer`] records wall-time into a histogram on
//!   drop and instruments `im2col`, `matmul`, quantizer forward, and AD
//!   metering via the process-wide [`metrics::global`] registry.
//! * [`span`] — hierarchical tracing spans ([`SpanGuard`] with
//!   parent/child ids, thread ids, monotonic timestamps, structured
//!   attributes) buffered per thread and drained into any sink as
//!   [`TelemetryEvent::SpanClosed`] events; gated by the `ADQ_TRACE`
//!   environment variable (0 = off, 1 = phases, 2 = verbose tiles).
//! * [`trace`] — exporters turning a span stream into Chrome Trace
//!   Event JSON (`chrome://tracing`/Perfetto) and collapsed-stack text
//!   for flamegraphs.
//!
//! Telemetry is observation-only by contract: attaching any sink — and
//! enabling tracing at any level — must not change a run's numeric
//! results.

pub mod event;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod trace;

pub use event::TelemetryEvent;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, ScopedTimer};
pub use sink::{ConsoleSink, JsonlSink, MemorySink, MultiSink, NullSink, TelemetrySink};
pub use span::{AttrValue, SpanGuard, SpanRecord};
pub use trace::TraceSpan;
