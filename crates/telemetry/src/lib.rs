//! Telemetry for the AD-quantization pipeline: structured run events,
//! pluggable sinks, and a metrics registry with hot-path timers.
//!
//! Three pieces, usable independently:
//!
//! * [`TelemetryEvent`] — a typed event per Algorithm-1 lifecycle step
//!   (run start, epochs, density measurements, saturation, bit-width
//!   re-assignment, pruning, layer removal, iteration and run completion,
//!   energy estimates), serializable as externally tagged JSON.
//! * [`TelemetrySink`] — where events go: [`JsonlSink`] (buffered file,
//!   one JSON object per line), [`ConsoleSink`] (human one-liners),
//!   [`MemorySink`] (tests), [`MultiSink`] (fan-out), and the default
//!   no-op [`NullSink`].
//! * [`MetricsRegistry`] — thread-safe counters, gauges, and fixed-bucket
//!   histograms; [`ScopedTimer`] records wall-time into a histogram on
//!   drop and instruments `im2col`, `matmul`, quantizer forward, and AD
//!   metering via the process-wide [`metrics::global`] registry.
//! * [`span`] — hierarchical tracing spans ([`SpanGuard`] with
//!   parent/child ids, thread ids, monotonic timestamps, structured
//!   attributes) buffered per thread and drained into any sink as
//!   [`TelemetryEvent::SpanClosed`] events; gated by the `ADQ_TRACE`
//!   environment variable (0 = off, 1 = phases, 2 = verbose tiles).
//! * [`trace`] — exporters turning a span stream into Chrome Trace
//!   Event JSON (`chrome://tracing`/Perfetto) and collapsed-stack text
//!   for flamegraphs.
//! * [`alloc`] — resource counters: a counting [`CountingAllocator`]
//!   (`GlobalAlloc` shim binaries opt into) plus FLOP/bytes-moved
//!   counters the kernels feed; spans attach the per-phase deltas as
//!   attributes when `ADQ_RESOURCES` tracking is on.
//! * [`endpoint`] — [`MetricsEndpoint`], a std-only TCP server exposing
//!   the registry (and resource totals) in Prometheus text exposition
//!   format for live scraping.
//! * [`health`] — [`HealthMonitor`]/[`RunHealth`], typed anomaly
//!   detection (non-finite loss, accuracy collapse, stalled run, queue
//!   saturation) over the event stream, used by `adq-watch`.
//! * [`lifecycle`] — serving request-lifecycle records: one
//!   [`RequestRecord`] per request with per-stage nanosecond deltas,
//!   the JSONL [`AccessLog`] with its off-hot-path writer thread, and
//!   [`TailExemplars`] retaining the K slowest requests for tail
//!   attribution (`adq-report --serving`).
//! * [`env`] — hardened parsing for the `ADQ_*` tuning knobs: invalid
//!   values produce a typed warning (logged once, counted in
//!   `telemetry.env.invalid`) and fall back to the documented default
//!   instead of being silently ignored.
//!
//! Telemetry is observation-only by contract: attaching any sink —
//! enabling tracing at any level, resource tracking, or the live
//! endpoint — must not change a run's numeric results.

pub mod alloc;
pub mod endpoint;
pub mod env;
pub mod event;
pub mod health;
pub mod lifecycle;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod trace;

pub use alloc::CountingAllocator;
pub use endpoint::MetricsEndpoint;
pub use event::TelemetryEvent;
pub use health::{HealthMonitor, RunHealth};
pub use lifecycle::{AccessLog, AccessLogHandle, LogSummary, RequestRecord, TailExemplars};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, ScopedTimer};
pub use sink::{ConsoleSink, JsonlSink, MemorySink, MultiSink, NullSink, TelemetrySink};
pub use span::{AttrValue, SpanGuard, SpanRecord};
pub use trace::TraceSpan;

/// Serialises unit tests that mutate process-global telemetry state
/// (trace level, resource tracking) across this crate's test modules.
#[cfg(test)]
pub(crate) fn global_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
