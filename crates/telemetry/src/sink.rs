//! Pluggable destinations for the telemetry event stream.
//!
//! Sinks take `&self` so one sink can be shared across the pipeline behind
//! an `Arc`; implementations use interior mutability where they buffer.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::TelemetryEvent;
use crate::metrics::Counter;

/// A destination for telemetry events.
pub trait TelemetrySink: Send + Sync {
    /// Accepts one event. Implementations must not panic on I/O problems;
    /// telemetry is observation-only and must never alter a run's outcome.
    fn record(&self, event: &TelemetryEvent);

    /// Forces buffered output down to its destination.
    fn flush(&self) {}
}

impl<S: TelemetrySink + ?Sized> TelemetrySink for std::sync::Arc<S> {
    fn record(&self, event: &TelemetryEvent) {
        (**self).record(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

/// Discards every event (the default sink; near-zero overhead).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline]
    fn record(&self, _event: &TelemetryEvent) {}
}

/// Collects events in memory, for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TelemetryEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &TelemetryEvent) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Prints one human-readable line per event to stdout.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConsoleSink;

impl TelemetrySink for ConsoleSink {
    fn record(&self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::RunStarted { run, seed, .. } => {
                println!("[telemetry] run started: {run} (seed {seed})");
            }
            TelemetryEvent::EpochCompleted {
                iteration,
                epoch,
                loss,
                accuracy,
            } => {
                println!(
                    "[telemetry] iter {iteration} epoch {epoch}: \
                     loss {loss:.4}, acc {:.1}%",
                    accuracy * 100.0
                );
            }
            TelemetryEvent::DensityMeasured {
                iteration,
                epoch,
                total_ad,
                densities,
            } => {
                println!(
                    "[telemetry] iter {iteration} epoch {epoch}: \
                     total AD {total_ad:.4} over {} layers",
                    densities.len()
                );
            }
            TelemetryEvent::SaturationDetected {
                iteration, epoch, ..
            } => {
                println!("[telemetry] iter {iteration}: AD saturated at epoch {epoch}");
            }
            TelemetryEvent::BitWidthAssigned {
                iteration,
                layer,
                old_bits,
                new_bits,
            } => {
                println!(
                    "[telemetry] iter {iteration}: layer {layer} bits {old_bits} -> {new_bits}"
                );
            }
            TelemetryEvent::LayerPruned {
                iteration,
                layer,
                old_channels,
                new_channels,
            } => {
                println!(
                    "[telemetry] iter {iteration}: layer {layer} pruned \
                     {old_channels} -> {new_channels} channels"
                );
            }
            TelemetryEvent::LayerRemoved { iteration, layer } => {
                println!("[telemetry] iter {iteration}: layer {layer} removed (dead)");
            }
            TelemetryEvent::IterationCompleted {
                iteration,
                epochs_trained,
                test_accuracy,
                ..
            } => {
                println!(
                    "[telemetry] iter {iteration} done: {epochs_trained} epochs, \
                     test acc {:.1}%",
                    test_accuracy * 100.0
                );
            }
            TelemetryEvent::EnergyEstimated {
                label,
                total_pj,
                efficiency_vs_baseline,
            } => {
                println!(
                    "[telemetry] energy {label}: {total_pj:.1} pJ \
                     ({efficiency_vs_baseline:.2}x vs baseline)"
                );
            }
            TelemetryEvent::CheckpointSaved {
                iteration,
                path,
                bytes,
            } => {
                println!("[telemetry] iter {iteration}: checkpoint saved to {path} ({bytes} B)");
            }
            TelemetryEvent::WorkerPoolConfigured {
                threads,
                microbatch,
            } => match microbatch {
                Some(m) => println!("[telemetry] worker pool: {threads} threads, microbatch {m}"),
                None => println!("[telemetry] worker pool: {threads} threads, serial training"),
            },
            TelemetryEvent::RunResumed {
                run,
                next_iteration,
                completed_iterations,
            } => {
                println!(
                    "[telemetry] run resumed: {run} at iter {next_iteration} \
                     ({completed_iterations} already complete)"
                );
            }
            TelemetryEvent::RunCompleted {
                iterations,
                training_complexity,
                final_accuracy,
            } => {
                println!(
                    "[telemetry] run done: {iterations} iterations, \
                     complexity {training_complexity:.3}, final acc {:.1}%",
                    final_accuracy * 100.0
                );
            }
            TelemetryEvent::SpanClosed {
                name,
                start_ns,
                end_ns,
                thread,
                ..
            } => {
                println!(
                    "[telemetry] span {name}: {:.3} ms on thread {thread}",
                    end_ns.saturating_sub(*start_ns) as f64 / 1e6
                );
            }
            TelemetryEvent::TraceExported {
                path,
                spans,
                dropped,
                format,
            } => {
                println!("[telemetry] trace exported: {path} ({format}, {spans} spans, {dropped} dropped)");
            }
        }
    }
}

/// Appends one JSON object per line to a file (buffered).
///
/// Writes go through a [`BufWriter`] so hot instrumented runs (span
/// drains can emit thousands of lines per iteration) don't pay one
/// syscall per event; the buffer is flushed every
/// [`FLUSH_EVERY_EVENTS`](JsonlSink::FLUSH_EVERY_EVENTS) events or
/// [`FLUSH_INTERVAL`](JsonlSink::FLUSH_INTERVAL) of wall time, whichever
/// comes first, so live tailers (`adq-watch`) see fresh lines mid-run,
/// and once more on drop.
///
/// Write and flush failures after creation cannot abort the run
/// (telemetry is observation-only), but they are surfaced rather than
/// silently swallowed: each failure increments the process-wide
/// `telemetry.sink.write_errors` counter and this sink's
/// [`write_errors`](JsonlSink::write_errors) tally, and the first one
/// prints a warning to stderr.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufferedState>,
    /// Failures on this sink (the global counter aggregates all sinks).
    errors: AtomicU64,
    /// `telemetry.sink.write_errors` in the global registry, resolved once.
    error_counter: Arc<Counter>,
}

/// The buffered writer plus the periodic-flush bookkeeping it owns.
#[derive(Debug)]
struct BufferedState {
    writer: BufWriter<File>,
    /// Events written since the last flush.
    pending: usize,
    /// When the last flush happened.
    last_flush: std::time::Instant,
}

impl JsonlSink {
    /// Events buffered before a flush is forced.
    pub const FLUSH_EVERY_EVENTS: usize = 64;

    /// Maximum wall time an event sits in the buffer before the next
    /// record flushes it through.
    pub const FLUSH_INTERVAL: std::time::Duration = std::time::Duration::from_millis(250);

    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufferedState {
                writer: BufWriter::new(file),
                pending: 0,
                last_flush: std::time::Instant::now(),
            }),
            errors: AtomicU64::new(0),
            error_counter: crate::metrics::global().counter("telemetry.sink.write_errors"),
        })
    }

    /// Write/flush failures seen by this sink since creation.
    pub fn write_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn count_error(&self, context: &str, err: &std::io::Error) {
        let seen = self.errors.fetch_add(1, Ordering::Relaxed);
        self.error_counter.inc();
        if seen == 0 {
            eprintln!("warning: telemetry jsonl {context} failed: {err}");
        }
    }

    /// Flushes `state` and resets its periodic-flush bookkeeping.
    fn flush_state(&self, state: &mut BufferedState) {
        if let Err(err) = state.writer.flush() {
            self.count_error("flush", &err);
        }
        state.pending = 0;
        state.last_flush = std::time::Instant::now();
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &TelemetryEvent) {
        let Ok(line) = serde_json::to_string(event) else {
            return;
        };
        let mut state = self.writer.lock().expect("jsonl sink poisoned");
        // Telemetry must never fail the run; count and drop the line on
        // I/O errors.
        if let Err(err) = writeln!(state.writer, "{line}") {
            self.count_error("write", &err);
        }
        state.pending += 1;
        if state.pending >= Self::FLUSH_EVERY_EVENTS
            || state.last_flush.elapsed() >= Self::FLUSH_INTERVAL
        {
            self.flush_state(&mut state);
        }
    }

    fn flush(&self) {
        let mut state = self.writer.lock().expect("jsonl sink poisoned");
        self.flush_state(&mut state);
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Fans every event out to several sinks in order.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl MultiSink {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink to the fan-out (builder style).
    #[must_use]
    pub fn with(mut self, sink: impl TelemetrySink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the fan-out has no sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TelemetrySink for MultiSink {
    fn record(&self, event: &TelemetryEvent) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TelemetryEvent {
        TelemetryEvent::EpochCompleted {
            iteration: 0,
            epoch: 1,
            loss: 0.5,
            accuracy: 0.75,
        }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        sink.record(&sample_event());
        sink.record(&TelemetryEvent::LayerRemoved {
            iteration: 0,
            layer: 2,
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "EpochCompleted");
        assert_eq!(events[1].kind(), "LayerRemoved");
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("adq-telemetry-test-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).expect("create file");
            sink.record(&sample_event());
            sink.record(&TelemetryEvent::RunCompleted {
                iterations: 1,
                training_complexity: 1.0,
                final_accuracy: 0.8,
            });
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: TelemetryEvent = serde_json::from_str(lines[0]).expect("parse line");
        assert_eq!(first, sample_event());
        std::fs::remove_file(&path).ok();
    }

    /// Writing through a sink whose file cannot accept data (Linux
    /// `/dev/full` fails every write with `ENOSPC`) must not panic, must
    /// tally the failures, and must bump the global
    /// `telemetry.sink.write_errors` counter.
    #[test]
    #[cfg(target_os = "linux")]
    fn jsonl_sink_counts_write_errors() {
        let Ok(sink) = JsonlSink::create("/dev/full") else {
            // Environments without /dev/full can't exercise this path.
            return;
        };
        let global = crate::metrics::global().counter("telemetry.sink.write_errors");
        let before = global.get();
        // Overflow the BufWriter's internal buffer so the write path
        // itself fails, not just the final flush.
        for _ in 0..2048 {
            sink.record(&sample_event());
        }
        sink.flush();
        assert!(sink.write_errors() >= 1);
        assert!(global.get() > before);
    }

    #[test]
    fn jsonl_sink_reports_no_errors_on_healthy_target() {
        let path = std::env::temp_dir().join(format!(
            "adq-telemetry-ok-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let sink = JsonlSink::create(&path).expect("create file");
        sink.record(&sample_event());
        sink.flush();
        assert_eq!(sink.write_errors(), 0);
        drop(sink);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_flushes_periodically_for_live_tailers() {
        let path = std::env::temp_dir().join(format!(
            "adq-telemetry-periodic-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let sink = JsonlSink::create(&path).expect("create file");
        // Count threshold: the batch is on disk without an explicit flush
        // while the sink is still alive.
        for _ in 0..JsonlSink::FLUSH_EVERY_EVENTS {
            sink.record(&sample_event());
        }
        let text = std::fs::read_to_string(&path).expect("read while live");
        assert_eq!(text.lines().count(), JsonlSink::FLUSH_EVERY_EVENTS);
        // Time threshold: one stale buffered event flushes through with
        // the next record once the interval has passed.
        sink.record(&sample_event());
        std::thread::sleep(JsonlSink::FLUSH_INTERVAL + std::time::Duration::from_millis(50));
        sink.record(&sample_event());
        let text = std::fs::read_to_string(&path).expect("read while live");
        assert_eq!(text.lines().count(), JsonlSink::FLUSH_EVERY_EVENTS + 2);
        drop(sink);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = std::sync::Arc::new(MemorySink::new());
        let b = std::sync::Arc::new(MemorySink::new());
        let multi = MultiSink::new().with(a.clone()).with(b.clone());
        multi.record(&sample_event());
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(multi.len(), 2);
    }
}
