//! Hardened environment-variable parsing for the `ADQ_*` tuning knobs.
//!
//! The knobs (`ADQ_PAR_FLOPS`, `ADQ_AUTOTUNE`, ...) are read once at
//! startup and silently falling back on a typo would leave a run tuned
//! differently than the operator believes. Every parse failure therefore
//! produces a **typed** [`EnvParseIssue`], is logged to stderr exactly
//! once per variable, counted in the process-wide
//! `telemetry.env.invalid` metric, and then falls back to the caller's
//! default — an invalid value never aborts a run and never silently
//! changes behaviour.

use std::fmt;

/// Why an environment variable's value could not be used. Carried in the
/// warning log line so an operator can tell a typo from an overflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvParseIssue {
    /// The variable is set but empty (or whitespace only).
    Empty,
    /// The value is not a number (or not a recognised boolean).
    Invalid(String),
    /// The value is a well-formed number too large for the target type.
    Overflow(String),
}

impl fmt::Display for EnvParseIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvParseIssue::Empty => write!(f, "value is empty"),
            EnvParseIssue::Invalid(raw) => write!(f, "value {raw:?} is not valid"),
            EnvParseIssue::Overflow(raw) => write!(f, "value {raw:?} overflows"),
        }
    }
}

/// Parses a `usize` from a raw environment value, distinguishing
/// overflow from garbage so the warning names the actual problem.
///
/// # Errors
///
/// Returns the typed [`EnvParseIssue`] describing why `raw` is unusable.
pub fn parse_usize(raw: &str) -> Result<usize, EnvParseIssue> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(EnvParseIssue::Empty);
    }
    match trimmed.parse::<usize>() {
        Ok(v) => Ok(v),
        Err(_) => {
            // All-digit input that failed to parse can only be overflow.
            if trimmed.chars().all(|c| c.is_ascii_digit()) {
                Err(EnvParseIssue::Overflow(trimmed.to_string()))
            } else {
                Err(EnvParseIssue::Invalid(trimmed.to_string()))
            }
        }
    }
}

/// Parses a boolean knob: `1`/`true`/`on`/`yes` enable, `0`/`false`/
/// `off`/`no` disable (ASCII case-insensitive).
///
/// # Errors
///
/// Returns the typed [`EnvParseIssue`] describing why `raw` is unusable.
pub fn parse_bool(raw: &str) -> Result<bool, EnvParseIssue> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(EnvParseIssue::Empty);
    }
    match trimmed.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        _ => Err(EnvParseIssue::Invalid(trimmed.to_string())),
    }
}

/// Logs one warning for an unusable variable and counts it in
/// `telemetry.env.invalid`. Callers cache the parse result in a
/// `OnceLock`, so each variable warns at most once per process.
pub fn warn_invalid(name: &str, issue: &EnvParseIssue, fallback: &str) {
    crate::metrics::global()
        .counter("telemetry.env.invalid")
        .inc();
    eprintln!("adq: warning: ignoring {name}: {issue}; using {fallback}");
}

/// Reads `name` as a `usize`: `None` when unset **or** unusable (after
/// warning); `Some` only for a value that actually parsed.
pub fn usize_var(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match parse_usize(&raw) {
        Ok(v) => Some(v),
        Err(issue) => {
            warn_invalid(name, &issue, "the default");
            None
        }
    }
}

/// Reads `name` as a boolean knob, warning and returning `default` when
/// the value is set but unusable.
pub fn bool_var(name: &str, default: bool) -> bool {
    let Ok(raw) = std::env::var(name) else {
        return default;
    };
    match parse_bool(&raw) {
        Ok(v) => v,
        Err(issue) => {
            warn_invalid(name, &issue, if default { "true" } else { "false" });
            default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_usize_values_parse() {
        assert_eq!(parse_usize("0"), Ok(0));
        assert_eq!(parse_usize("32768"), Ok(32768));
        assert_eq!(parse_usize("  512 "), Ok(512));
    }

    #[test]
    fn empty_usize_is_typed_empty() {
        assert_eq!(parse_usize(""), Err(EnvParseIssue::Empty));
        assert_eq!(parse_usize("   "), Err(EnvParseIssue::Empty));
    }

    #[test]
    fn garbage_usize_is_typed_invalid() {
        assert_eq!(
            parse_usize("fast"),
            Err(EnvParseIssue::Invalid("fast".to_string()))
        );
        assert_eq!(
            parse_usize("-1"),
            Err(EnvParseIssue::Invalid("-1".to_string()))
        );
        assert_eq!(
            parse_usize("1e6"),
            Err(EnvParseIssue::Invalid("1e6".to_string()))
        );
    }

    #[test]
    fn oversized_usize_is_typed_overflow() {
        let huge = "9".repeat(40);
        assert_eq!(parse_usize(&huge), Err(EnvParseIssue::Overflow(huge)));
    }

    #[test]
    fn bool_accepts_the_documented_spellings() {
        for raw in ["1", "true", "TRUE", "on", "yes"] {
            assert_eq!(parse_bool(raw), Ok(true), "{raw}");
        }
        for raw in ["0", "false", "Off", "no"] {
            assert_eq!(parse_bool(raw), Ok(false), "{raw}");
        }
    }

    #[test]
    fn bool_garbage_and_empty_are_typed() {
        assert_eq!(parse_bool(""), Err(EnvParseIssue::Empty));
        assert_eq!(
            parse_bool("enable"),
            Err(EnvParseIssue::Invalid("enable".to_string()))
        );
    }

    #[test]
    fn issues_render_the_offending_value() {
        let msg = EnvParseIssue::Overflow("99999999999999999999".into()).to_string();
        assert!(msg.contains("99999999999999999999"), "{msg}");
        assert!(EnvParseIssue::Empty.to_string().contains("empty"));
    }

    #[test]
    fn warning_is_counted_in_the_registry() {
        let counter = crate::metrics::global().counter("telemetry.env.invalid");
        let before = counter.get();
        warn_invalid("ADQ_TEST_VAR", &EnvParseIssue::Empty, "the default");
        assert!(counter.get() > before);
    }
}
