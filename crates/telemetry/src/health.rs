//! Typed run-health anomaly detection for live monitoring.
//!
//! [`HealthMonitor`] consumes the observations a telemetry tailer (or
//! the controller itself) extracts from the event stream — epoch
//! loss/accuracy, AD measurements, event arrival times — and raises
//! typed [`RunHealth`] anomalies:
//!
//! * [`RunHealth::NonFiniteLoss`] — training loss went NaN/±Inf (the
//!   vendored JSON writer serialises non-finite floats as `null`, so
//!   tailers map a `null` loss back to NaN before observing it).
//! * [`RunHealth::AccuracyCollapse`] — evaluation accuracy fell below a
//!   fraction of the best accuracy seen after a warm-up period, the
//!   failure mode of an over-aggressive bit-width drop (the paper's
//!   accuracy-vs-energy trade-off going off a cliff).
//! * [`RunHealth::Stalled`] — no new events arrived within the watchdog
//!   window, typically a hung worker pool or a filled disk.
//! * [`RunHealth::QueueSaturated`] — the serving admission queue is
//!   pinned at its `--queue-cap` bound while shed counters rise: the
//!   server is in sustained overload, not a transient burst.
//!
//! Detection is edge-triggered: each anomaly is raised when it starts,
//! not on every subsequent observation, so a dashboard can log events
//! without deduplicating. The monitor is pure state-machine logic (no
//! I/O, no clocks of its own) and is therefore fully unit-testable:
//! callers pass monotonic timestamps into the stall check.

/// Default fraction of the best-seen accuracy below which an epoch's
/// accuracy counts as a collapse.
pub const DEFAULT_COLLAPSE_FRACTION: f64 = 0.5;

/// Epochs to observe before accuracy-collapse detection arms; early
/// training is legitimately noisy.
pub const DEFAULT_WARMUP_EPOCHS: usize = 3;

/// Default stall-watchdog window in seconds.
pub const DEFAULT_STALL_SECS: u64 = 120;

/// A typed run-health anomaly.
#[derive(Debug, Clone, PartialEq)]
pub enum RunHealth {
    /// Training loss became NaN or ±Inf.
    NonFiniteLoss {
        /// Iteration the bad loss was observed in.
        iteration: usize,
        /// Epoch within the iteration.
        epoch: usize,
    },
    /// Accuracy fell below `collapse_fraction ×` the best seen so far.
    AccuracyCollapse {
        /// Iteration the collapse was observed in.
        iteration: usize,
        /// Epoch within the iteration.
        epoch: usize,
        /// The collapsed accuracy.
        accuracy: f64,
        /// The best accuracy observed before the collapse.
        best: f64,
    },
    /// No events arrived within the watchdog window.
    Stalled {
        /// Seconds since the last observed event.
        idle_secs: u64,
    },
    /// The serving admission queue is pinned at capacity while requests
    /// are being shed: sustained overload.
    QueueSaturated {
        /// Observed queue depth.
        depth: u64,
        /// The queue bound (`--queue-cap`).
        cap: u64,
        /// Cumulative shed count at the observation.
        shed: u64,
    },
}

impl RunHealth {
    /// A short stable label (`non_finite_loss`, ...) for logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            RunHealth::NonFiniteLoss { .. } => "non_finite_loss",
            RunHealth::AccuracyCollapse { .. } => "accuracy_collapse",
            RunHealth::Stalled { .. } => "stalled",
            RunHealth::QueueSaturated { .. } => "queue_saturated",
        }
    }

    /// One-line human description for dashboards.
    pub fn describe(&self) -> String {
        match self {
            RunHealth::NonFiniteLoss { iteration, epoch } => {
                format!("non-finite loss at iteration {iteration} epoch {epoch}")
            }
            RunHealth::AccuracyCollapse {
                iteration,
                epoch,
                accuracy,
                best,
            } => format!(
                "accuracy collapsed to {accuracy:.4} (best {best:.4}) at iteration {iteration} epoch {epoch}"
            ),
            RunHealth::Stalled { idle_secs } => {
                format!("no telemetry events for {idle_secs}s (stalled run?)")
            }
            RunHealth::QueueSaturated { depth, cap, shed } => {
                format!("serve queue saturated at {depth}/{cap} with {shed} shed (overload)")
            }
        }
    }
}

/// Edge-triggered anomaly detector over a run's observation stream.
#[derive(Debug)]
pub struct HealthMonitor {
    collapse_fraction: f64,
    warmup_epochs: usize,
    stall_secs: u64,
    epochs_seen: usize,
    best_accuracy: f64,
    loss_bad: bool,
    collapsed: bool,
    stalled: bool,
    saturated: bool,
    last_shed: u64,
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new(
            DEFAULT_COLLAPSE_FRACTION,
            DEFAULT_WARMUP_EPOCHS,
            DEFAULT_STALL_SECS,
        )
    }
}

impl HealthMonitor {
    /// A monitor with explicit thresholds.
    pub fn new(collapse_fraction: f64, warmup_epochs: usize, stall_secs: u64) -> Self {
        HealthMonitor {
            collapse_fraction,
            warmup_epochs,
            stall_secs,
            epochs_seen: 0,
            best_accuracy: 0.0,
            loss_bad: false,
            collapsed: false,
            stalled: false,
            saturated: false,
            last_shed: 0,
        }
    }

    /// The stall-watchdog window, in seconds.
    pub fn stall_secs(&self) -> u64 {
        self.stall_secs
    }

    /// Forgets all observed history (best accuracy, warmup progress,
    /// raised-anomaly edges) while keeping the thresholds. Call at a run
    /// boundary: a telemetry stream can carry several back-to-back runs
    /// (baseline then quantized), and the next run starting from scratch
    /// accuracy is not a collapse of the previous one.
    pub fn reset_run(&mut self) {
        self.epochs_seen = 0;
        self.best_accuracy = 0.0;
        self.loss_bad = false;
        self.collapsed = false;
        self.stalled = false;
        self.saturated = false;
        self.last_shed = 0;
    }

    /// Observes one completed epoch; returns any newly raised anomalies.
    pub fn observe_epoch(
        &mut self,
        iteration: usize,
        epoch: usize,
        loss: f64,
        accuracy: f64,
    ) -> Vec<RunHealth> {
        let mut raised = Vec::new();
        self.epochs_seen += 1;
        if !loss.is_finite() {
            if !self.loss_bad {
                self.loss_bad = true;
                raised.push(RunHealth::NonFiniteLoss { iteration, epoch });
            }
        } else {
            // Recovered (checkpoint rollback, bit-width revert): re-arm.
            self.loss_bad = false;
        }
        if accuracy.is_finite() {
            let armed = self.epochs_seen > self.warmup_epochs && self.best_accuracy > 0.0;
            if armed && accuracy < self.collapse_fraction * self.best_accuracy {
                if !self.collapsed {
                    self.collapsed = true;
                    raised.push(RunHealth::AccuracyCollapse {
                        iteration,
                        epoch,
                        accuracy,
                        best: self.best_accuracy,
                    });
                }
            } else {
                self.collapsed = false;
            }
            self.best_accuracy = self.best_accuracy.max(accuracy);
        }
        raised
    }

    /// Checks the stall watchdog given seconds since the last event;
    /// returns the anomaly on the idle→stalled edge only. Call
    /// [`reset_stall`](Self::reset_stall) when events resume.
    pub fn check_stall(&mut self, idle_secs: u64) -> Option<RunHealth> {
        if idle_secs < self.stall_secs || self.stalled {
            return None;
        }
        self.stalled = true;
        Some(RunHealth::Stalled { idle_secs })
    }

    /// Re-arms the stall watchdog after events resume.
    pub fn reset_stall(&mut self) {
        self.stalled = false;
    }

    /// Observes one serving-queue sample (depth, bound, cumulative shed
    /// count); raises [`RunHealth::QueueSaturated`] on the edge where the
    /// queue is pinned at capacity *and* the shed counter has risen since
    /// the previous sample — a full queue that is still keeping up (no new
    /// sheds) is load, not overload. The detector re-arms once depth
    /// drops below the bound.
    pub fn observe_queue(&mut self, depth: u64, cap: u64, shed_total: u64) -> Option<RunHealth> {
        let shedding = shed_total > self.last_shed;
        self.last_shed = shed_total;
        if cap == 0 || depth < cap {
            self.saturated = false;
            return None;
        }
        if !shedding || self.saturated {
            return None;
        }
        self.saturated = true;
        Some(RunHealth::QueueSaturated {
            depth,
            cap,
            shed: shed_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_loss_raises_once_and_rearms_on_recovery() {
        let mut m = HealthMonitor::default();
        assert!(m.observe_epoch(1, 1, 2.5, 0.1).is_empty());
        let raised = m.observe_epoch(1, 2, f64::NAN, 0.1);
        assert_eq!(raised.len(), 1);
        assert_eq!(raised[0].kind(), "non_finite_loss");
        assert_eq!(
            raised[0],
            RunHealth::NonFiniteLoss {
                iteration: 1,
                epoch: 2
            }
        );
        // Still bad: no duplicate event.
        assert!(m.observe_epoch(1, 3, f64::INFINITY, 0.1).is_empty());
        // Recovery re-arms the detector.
        assert!(m.observe_epoch(2, 1, 1.0, 0.1).is_empty());
        assert_eq!(m.observe_epoch(2, 2, f64::NAN, 0.1).len(), 1);
    }

    #[test]
    fn accuracy_collapse_fires_after_warmup_against_best() {
        let mut m = HealthMonitor::new(0.5, 2, 120);
        assert!(m.observe_epoch(1, 1, 1.0, 0.60).is_empty());
        assert!(m.observe_epoch(1, 2, 0.9, 0.70).is_empty());
        // Past warm-up, 0.30 < 0.5 × 0.70 → collapse.
        let raised = m.observe_epoch(2, 1, 0.8, 0.30);
        assert_eq!(raised.len(), 1);
        match &raised[0] {
            RunHealth::AccuracyCollapse { accuracy, best, .. } => {
                assert!((accuracy - 0.30).abs() < 1e-12);
                assert!((best - 0.70).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Still collapsed: edge-triggered, no duplicate.
        assert!(m.observe_epoch(2, 2, 0.8, 0.31).is_empty());
        // Recovery then a fresh collapse raises again.
        assert!(m.observe_epoch(3, 1, 0.7, 0.65).is_empty());
        assert_eq!(m.observe_epoch(3, 2, 0.7, 0.20).len(), 1);
    }

    #[test]
    fn collapse_is_quiet_during_warmup_and_before_any_signal() {
        let mut m = HealthMonitor::new(0.5, 3, 120);
        // Noisy early epochs never trigger inside warm-up.
        assert!(m.observe_epoch(1, 1, 1.0, 0.50).is_empty());
        assert!(m.observe_epoch(1, 2, 1.0, 0.05).is_empty());
        assert!(m.observe_epoch(1, 3, 1.0, 0.02).is_empty());
        // Zero best accuracy keeps the detector disarmed.
        let mut z = HealthMonitor::new(0.5, 0, 120);
        assert!(z.observe_epoch(1, 1, 1.0, 0.0).is_empty());
        assert!(z.observe_epoch(1, 2, 1.0, 0.0).is_empty());
    }

    #[test]
    fn stall_watchdog_is_edge_triggered_and_resettable() {
        let mut m = HealthMonitor::new(0.5, 3, 60);
        assert!(m.check_stall(59).is_none());
        let raised = m.check_stall(61).expect("stall");
        assert_eq!(raised.kind(), "stalled");
        assert!(m.check_stall(120).is_none(), "no duplicate while stalled");
        m.reset_stall();
        assert!(m.check_stall(10).is_none());
        assert!(m.check_stall(61).is_some());
    }

    #[test]
    fn queue_saturation_needs_pinned_depth_and_rising_sheds() {
        let mut m = HealthMonitor::default();
        // Full queue but nothing shed yet: keeping up, not overload.
        assert!(m.observe_queue(256, 256, 0).is_none());
        // Depth pinned at cap while the shed counter rises → raise once.
        let raised = m.observe_queue(256, 256, 5).expect("saturation");
        assert_eq!(raised.kind(), "queue_saturated");
        assert_eq!(
            raised,
            RunHealth::QueueSaturated {
                depth: 256,
                cap: 256,
                shed: 5
            }
        );
        // Still saturated: edge-triggered, no duplicate.
        assert!(m.observe_queue(256, 256, 9).is_none());
        // Drain below the bound re-arms the detector.
        assert!(m.observe_queue(100, 256, 9).is_none());
        assert!(m.observe_queue(256, 256, 12).is_some());
    }

    #[test]
    fn queue_saturation_ignores_sheds_while_below_capacity() {
        let mut m = HealthMonitor::default();
        // Sheds observed while depth is below the bound (e.g. shed-oldest
        // already drained the queue) never raise.
        assert!(m.observe_queue(10, 256, 3).is_none());
        assert!(m.observe_queue(12, 256, 7).is_none());
        // A zero capacity (no bound configured) is always quiet.
        assert!(m.observe_queue(50, 0, 99).is_none());
        // Saturation with *stale* shed counts stays quiet: the counter
        // must rise in the same sample the queue is pinned.
        assert!(m.observe_queue(256, 256, 7).is_none());
    }

    #[test]
    fn descriptions_are_single_lines() {
        let events = [
            RunHealth::NonFiniteLoss {
                iteration: 2,
                epoch: 1,
            },
            RunHealth::AccuracyCollapse {
                iteration: 3,
                epoch: 2,
                accuracy: 0.1,
                best: 0.7,
            },
            RunHealth::Stalled { idle_secs: 180 },
            RunHealth::QueueSaturated {
                depth: 256,
                cap: 256,
                shed: 41,
            },
        ];
        for event in &events {
            let line = event.describe();
            assert!(!line.is_empty() && !line.contains('\n'), "{line:?}");
        }
    }
}
