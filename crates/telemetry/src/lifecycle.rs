//! Request-lifecycle records and the serving access log.
//!
//! The serving stack stamps monotonic timestamps at each lifecycle stage
//! of a request (frame-read → admit → dequeue → batch-formed →
//! replica-exec → response-written) and condenses them into one
//! [`RequestRecord`] per request — trace id, connection id, replica,
//! batch size, per-stage nanosecond deltas, and a typed outcome
//! (`ok` / `shed` / `error` / `goodbye-refused`). This module owns that
//! record type plus the machinery around it:
//!
//! * [`AccessLog`] — a structured JSONL access log (one record per
//!   line). Records are handed off through a bounded channel to a
//!   dedicated writer thread, so the serving hot path never blocks on
//!   disk: when the channel is full the record is *dropped* and counted
//!   (`serve.access_log.dropped`), never queued unboundedly. Written
//!   records and write failures are counted too
//!   (`serve.access_log.records` / `serve.access_log.write_errors`).
//!   Closing the log appends one [`LogSummary`] line with the final
//!   counts and the tail exemplars, then flushes.
//! * [`TailExemplars`] — a bounded buffer retaining the K slowest
//!   requests seen (by `total_ns`) with their full stage waterfalls;
//!   the summary line carries them so `adq-report --serving` can render
//!   tail-latency attribution without re-scanning for the tail.
//! * [`read_records`] / [`parse_line`] — the parsing half, shared by
//!   `adq-report --serving`, `adq-watch --access-log`, and the load
//!   generator's server-side latency join.
//!
//! Logging is observation-only by contract: a server with an access log
//! attached must produce byte-identical responses to one without
//! (`crates/infer/tests/access_log.rs` enforces this).

use std::io::{self, BufRead, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};

use crate::metrics;

/// Outcome label: the request was answered with logits.
pub const OUTCOME_OK: &str = "ok";
/// Outcome label: admission control shed the request.
pub const OUTCOME_SHED: &str = "shed";
/// Outcome label: the request was refused with a typed error frame.
pub const OUTCOME_ERROR: &str = "error";
/// Outcome label: the request arrived during shutdown drain and was
/// refused because the queue had already closed.
pub const OUTCOME_GOODBYE_REFUSED: &str = "goodbye-refused";

/// Records buffered between the serving threads and the writer thread;
/// beyond this the hot path drops records instead of blocking.
const CHANNEL_CAP: usize = 4096;

/// Default number of tail exemplars retained in the summary.
pub const DEFAULT_EXEMPLARS: usize = 8;

/// One request's lifecycle, condensed: identity, placement, per-stage
/// wall-time deltas (nanoseconds), and the typed outcome. Stage deltas
/// cover frame-read→admit (`admit_ns`), admit→executor-claim
/// (`queue_wait_ns`), claim→batch-formed (`batch_wait_ns`),
/// batch-formed→logits-ready (`exec_ns`, includes requantization), and
/// the response write (`write_ns`); `total_ns` spans frame-read to
/// response-written. For non-`ok` outcomes the stages that never
/// happened are zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Server-assigned trace id (echoed to tracing clients).
    pub trace_id: u64,
    /// Connection the request arrived on (accept-order id).
    pub conn_id: u64,
    /// Replica executor that ran the batch (`ok` outcomes only).
    #[serde(default)]
    pub replica: Option<u64>,
    /// Size of the coalesced batch the request rode in (`ok` only).
    #[serde(default)]
    pub batch_size: Option<u64>,
    /// `ok` / `shed` / `error` / `goodbye-refused`.
    pub outcome: String,
    /// Frame fully read → admission decision.
    pub admit_ns: u64,
    /// Admitted → an executor claimed the queue front.
    pub queue_wait_ns: u64,
    /// Executor claim → batch formed (waiting for company).
    pub batch_wait_ns: u64,
    /// Batch formed → logits ready (tensor assembly, integer GEMMs,
    /// requantization).
    pub exec_ns: u64,
    /// Response frame encode + socket write.
    pub write_ns: u64,
    /// Frame read → response written (end-to-end).
    pub total_ns: u64,
    /// Queue depth observed at the recording site.
    pub queue_depth: u64,
    /// The queue bound in force.
    pub queue_cap: u64,
    /// Nanoseconds since the server started (record ordering).
    pub ts_ns: u64,
}

impl RequestRecord {
    /// Sum of the per-stage deltas — per request this tracks
    /// [`RequestRecord::total_ns`] minus only the time spent waiting for
    /// batch-mates' responses to be written ahead of this one.
    pub fn stage_sum_ns(&self) -> u64 {
        self.admit_ns + self.queue_wait_ns + self.batch_wait_ns + self.exec_ns + self.write_ns
    }
}

/// Final line of a closed access log: record/drop/error accounting,
/// per-outcome counts, and the K slowest requests with full waterfalls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogSummary {
    /// Records successfully written (excludes this summary line).
    pub records: u64,
    /// Records dropped because the hand-off channel was full.
    pub dropped: u64,
    /// Records lost to I/O errors on the log file.
    pub write_errors: u64,
    /// `ok` records written.
    pub ok: u64,
    /// `shed` records written.
    pub shed: u64,
    /// `error` records written.
    pub errors: u64,
    /// `goodbye-refused` records written.
    pub goodbye_refused: u64,
    /// The slowest requests by `total_ns`, slowest first.
    pub exemplars: Vec<RequestRecord>,
}

/// Wrapper that gives the summary line its distinguishing shape:
/// `{"summary": {...}}` against records' flat objects.
#[derive(Debug, Serialize, Deserialize)]
struct SummaryLine {
    summary: LogSummary,
}

// ---- tail exemplars -----------------------------------------------------

/// Bounded buffer of the K slowest requests seen, by `total_ns`,
/// kept sorted slowest-first. Pure and unit-testable; the access-log
/// writer thread feeds it and the closing summary carries its contents.
#[derive(Debug, Clone)]
pub struct TailExemplars {
    k: usize,
    items: Vec<RequestRecord>,
}

impl TailExemplars {
    /// A buffer retaining the `k` slowest requests (`k == 0` keeps none).
    pub fn new(k: usize) -> Self {
        TailExemplars {
            k,
            items: Vec::with_capacity(k.min(64)),
        }
    }

    /// Offers one record; it is retained only while it ranks among the
    /// K slowest seen so far.
    pub fn offer(&mut self, record: &RequestRecord) {
        if self.k == 0 {
            return;
        }
        if self.items.len() == self.k
            && record.total_ns <= self.items.last().map_or(0, |r| r.total_ns)
        {
            return;
        }
        let at = self
            .items
            .partition_point(|r| r.total_ns >= record.total_ns);
        self.items.insert(at, record.clone());
        self.items.truncate(self.k);
    }

    /// The retained records, slowest first.
    pub fn slowest(&self) -> &[RequestRecord] {
        &self.items
    }
}

// ---- access log ---------------------------------------------------------

enum LogMsg {
    Record(RequestRecord),
    Close,
}

struct LogShared {
    dropped: AtomicU64,
}

/// Cheap, cloneable producer half of an [`AccessLog`]: serving threads
/// call [`AccessLogHandle::record`] on the hot path. Never blocks — a
/// full channel drops the record and bumps `serve.access_log.dropped`.
#[derive(Clone)]
pub struct AccessLogHandle {
    sender: SyncSender<LogMsg>,
    shared: Arc<LogShared>,
}

impl AccessLogHandle {
    /// Hands one record to the writer thread (drop-on-full, non-blocking).
    pub fn record(&self, record: RequestRecord) {
        match self.sender.try_send(LogMsg::Record(record)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                metrics::global().counter("serve.access_log.dropped").inc();
            }
        }
    }
}

/// A structured JSONL access log with a dedicated writer thread.
/// Create with [`AccessLog::create`], pass [`AccessLog::handle`] clones
/// to the producers, and [`AccessLog::close`] (or drop) to drain, append
/// the [`LogSummary`] line, flush and join the writer.
pub struct AccessLog {
    handle: AccessLogHandle,
    writer: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl AccessLog {
    /// Creates (truncates) `path` and starts the writer thread; the
    /// closing summary retains the `exemplars` slowest requests.
    ///
    /// # Errors
    ///
    /// Returns file-creation and thread-spawn errors.
    pub fn create(path: impl AsRef<Path>, exemplars: usize) -> io::Result<AccessLog> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        let (sender, receiver) = sync_channel(CHANNEL_CAP);
        let shared = Arc::new(LogShared {
            dropped: AtomicU64::new(0),
        });
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("adq-access-log".into())
            .spawn(move || writer_loop(file, &receiver, &writer_shared, exemplars))?;
        Ok(AccessLog {
            handle: AccessLogHandle { sender, shared },
            writer: Some(writer),
            path,
        })
    }

    /// A producer handle for the serving threads.
    pub fn handle(&self) -> AccessLogHandle {
        self.handle.clone()
    }

    /// Where the log is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Drains queued records, appends the summary line, flushes, and
    /// joins the writer thread. Records offered after close are dropped
    /// (and counted) — producers never block on a closed log.
    pub fn close(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(writer) = self.writer.take() {
            // Ordered behind every record already in the channel, so the
            // writer drains them all before summarising.
            let _ = self.handle.sender.send(LogMsg::Close);
            let _ = writer.join();
        }
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        self.finish();
    }
}

fn writer_loop(
    file: std::fs::File,
    receiver: &Receiver<LogMsg>,
    shared: &Arc<LogShared>,
    exemplar_cap: usize,
) {
    let records_counter = metrics::global().counter("serve.access_log.records");
    let errors_counter = metrics::global().counter("serve.access_log.write_errors");
    let mut out = BufWriter::new(file);
    let mut exemplars = TailExemplars::new(exemplar_cap);
    let (mut written, mut write_errors) = (0u64, 0u64);
    let (mut ok, mut shed, mut errors, mut goodbye) = (0u64, 0u64, 0u64, 0u64);
    while let Ok(msg) = receiver.recv() {
        let record = match msg {
            LogMsg::Record(record) => record,
            LogMsg::Close => break,
        };
        let line = match serde_json::to_string(&record) {
            Ok(line) => line,
            Err(_) => {
                write_errors += 1;
                errors_counter.inc();
                continue;
            }
        };
        match writeln!(out, "{line}") {
            Ok(()) => {
                written += 1;
                records_counter.inc();
                exemplars.offer(&record);
                match record.outcome.as_str() {
                    OUTCOME_OK => ok += 1,
                    OUTCOME_SHED => shed += 1,
                    OUTCOME_GOODBYE_REFUSED => goodbye += 1,
                    _ => errors += 1,
                }
            }
            Err(_) => {
                write_errors += 1;
                errors_counter.inc();
            }
        }
    }
    let summary = SummaryLine {
        summary: LogSummary {
            records: written,
            dropped: shared.dropped.load(Ordering::Relaxed),
            write_errors,
            ok,
            shed,
            errors,
            goodbye_refused: goodbye,
            exemplars: exemplars.slowest().to_vec(),
        },
    };
    if let Ok(line) = serde_json::to_string(&summary) {
        let _ = writeln!(out, "{line}");
    }
    let _ = out.flush();
}

// ---- parsing ------------------------------------------------------------

/// One parsed access-log line.
#[derive(Debug, Clone, PartialEq)]
pub enum LogLine {
    /// A per-request record.
    Record(RequestRecord),
    /// The closing summary.
    Summary(LogSummary),
}

/// Parses one access-log line; `None` for blank or malformed lines
/// (a live tailer can catch a line mid-write).
pub fn parse_line(line: &str) -> Option<LogLine> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    if let Ok(record) = serde_json::from_str::<RequestRecord>(line) {
        return Some(LogLine::Record(record));
    }
    serde_json::from_str::<SummaryLine>(line)
        .ok()
        .map(|wrapper| LogLine::Summary(wrapper.summary))
}

/// A fully parsed access log.
#[derive(Debug, Default)]
pub struct AccessLogView {
    /// Per-request records, in file order.
    pub records: Vec<RequestRecord>,
    /// The closing summary, when the log was closed cleanly.
    pub summary: Option<LogSummary>,
    /// Lines that parsed as neither record nor summary.
    pub malformed: u64,
}

/// Reads a whole access log from disk.
///
/// # Errors
///
/// Returns file I/O errors; malformed lines are counted, not fatal.
pub fn read_records(path: impl AsRef<Path>) -> io::Result<AccessLogView> {
    let file = std::fs::File::open(path)?;
    let mut view = AccessLogView::default();
    for line in io::BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Some(LogLine::Record(record)) => view.records.push(record),
            Some(LogLine::Summary(summary)) => view.summary = Some(summary),
            None => view.malformed += 1,
        }
    }
    Ok(view)
}

/// Exact quantile over an unsorted sample (nearest-rank, the same
/// convention as `LoadStats`): `q` in `[0, 1]`, `0` on an empty sample.
pub fn exact_quantile_ns(values: &mut [u64], q: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trace_id: u64, total_ns: u64, outcome: &str) -> RequestRecord {
        RequestRecord {
            trace_id,
            conn_id: 1,
            replica: Some(0),
            batch_size: Some(2),
            outcome: outcome.to_string(),
            admit_ns: 10,
            queue_wait_ns: 100,
            batch_wait_ns: 200,
            exec_ns: total_ns.saturating_sub(330),
            write_ns: 20,
            total_ns,
            queue_depth: 1,
            queue_cap: 256,
            ts_ns: trace_id * 1000,
        }
    }

    #[test]
    fn record_roundtrips_through_jsonl() {
        let original = record(42, 5_000, OUTCOME_OK);
        let line = serde_json::to_string(&original).unwrap();
        assert!(!line.contains('\n'));
        match parse_line(&line) {
            Some(LogLine::Record(parsed)) => assert_eq!(parsed, original),
            other => panic!("expected record, got {other:?}"),
        }
        assert_eq!(original.stage_sum_ns(), 5_000);
    }

    #[test]
    fn summary_line_is_distinguishable_from_records() {
        let summary = LogSummary {
            records: 3,
            dropped: 1,
            write_errors: 0,
            ok: 2,
            shed: 1,
            errors: 0,
            goodbye_refused: 0,
            exemplars: vec![record(9, 9_000, OUTCOME_OK)],
        };
        let line = serde_json::to_string(&SummaryLine {
            summary: summary.clone(),
        })
        .unwrap();
        match parse_line(&line) {
            Some(LogLine::Summary(parsed)) => assert_eq!(parsed, summary),
            other => panic!("expected summary, got {other:?}"),
        }
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("{\"trace_id\": tru"), None);
    }

    #[test]
    fn tail_exemplars_keep_the_k_slowest_sorted() {
        let mut tail = TailExemplars::new(3);
        for (id, total) in [(1u64, 500u64), (2, 9_000), (3, 700), (4, 8_000), (5, 100)] {
            tail.offer(&record(id, total, OUTCOME_OK));
        }
        let totals: Vec<u64> = tail.slowest().iter().map(|r| r.total_ns).collect();
        assert_eq!(totals, vec![9_000, 8_000, 700]);
        // zero-capacity buffer stays empty
        let mut none = TailExemplars::new(0);
        none.offer(&record(1, 1, OUTCOME_OK));
        assert!(none.slowest().is_empty());
    }

    #[test]
    fn access_log_writes_records_and_a_closing_summary() {
        let path = std::env::temp_dir().join(format!("adq_access_{}.jsonl", std::process::id()));
        let log = AccessLog::create(&path, 2).unwrap();
        let handle = log.handle();
        handle.record(record(1, 4_000, OUTCOME_OK));
        handle.record(record(2, 9_000, OUTCOME_SHED));
        handle.record(record(3, 1_000, OUTCOME_OK));
        handle.record(record(4, 2_000, OUTCOME_GOODBYE_REFUSED));
        log.close();

        let view = read_records(&path).unwrap();
        assert_eq!(view.records.len(), 4);
        assert_eq!(view.malformed, 0);
        let summary = view.summary.expect("closed log has a summary");
        assert_eq!(summary.records, 4);
        assert_eq!(summary.dropped, 0);
        assert_eq!(summary.write_errors, 0);
        assert_eq!(
            (summary.ok, summary.shed, summary.goodbye_refused),
            (2, 1, 1)
        );
        // exemplars: the 2 slowest, slowest first
        let totals: Vec<u64> = summary.exemplars.iter().map(|r| r.total_ns).collect();
        assert_eq!(totals, vec![9_000, 4_000]);

        // records offered after close are dropped, not a panic
        handle.record(record(5, 1, OUTCOME_OK));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exact_quantiles_use_nearest_rank() {
        let mut sample = vec![900u64, 100, 500, 300, 700];
        assert_eq!(exact_quantile_ns(&mut sample, 0.5), 500);
        assert_eq!(exact_quantile_ns(&mut sample, 0.99), 900);
        assert_eq!(exact_quantile_ns(&mut [][..], 0.5), 0);
    }
}
