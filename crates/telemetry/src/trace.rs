//! Trace exporters: Chrome Trace Event JSON and collapsed-stack text.
//!
//! Spans travel through the normal telemetry stream as
//! [`TelemetryEvent::SpanClosed`] lines (see `crate::span`), so any run's
//! JSONL file doubles as a trace. This module turns those events back
//! into a [`TraceSpan`] forest and renders it two ways:
//!
//! * [`chrome_trace`] — Chrome Trace Event Format (`ph: "X"` complete
//!   events, microsecond timestamps), loadable in `chrome://tracing` or
//!   <https://ui.perfetto.dev>.
//! * [`collapsed_stacks`] — one `root;child;leaf weight` line per unique
//!   span path with self-time nanosecond weights, the input format of
//!   `flamegraph.pl` and speedscope.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

use crate::event::TelemetryEvent;

/// One closed span, as parsed back from a telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Process-unique span id (1-based).
    pub id: u64,
    /// Id of the enclosing span (0 = root).
    pub parent: u64,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Span name (`adq.iteration`, `nn.microbatch`, ...).
    pub name: String,
    /// Monotonic start, ns since the recording process's tracing epoch.
    pub start_ns: u64,
    /// Monotonic end, ns since the recording process's tracing epoch.
    pub end_ns: u64,
    /// Structured attributes.
    pub args: serde_json::Value,
}

impl TraceSpan {
    /// Wall time covered by the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Extracts a span from a [`TelemetryEvent::SpanClosed`] event
    /// (`None` for every other event kind).
    pub fn from_event(event: &TelemetryEvent) -> Option<TraceSpan> {
        match event {
            TelemetryEvent::SpanClosed {
                id,
                parent,
                thread,
                name,
                start_ns,
                end_ns,
                args,
            } => Some(TraceSpan {
                id: *id,
                parent: *parent,
                thread: *thread,
                name: name.clone(),
                start_ns: *start_ns,
                end_ns: *end_ns,
                args: args.clone(),
            }),
            _ => None,
        }
    }

    /// A numeric attribute from the span's args, widened to `f64`.
    pub fn arg_f64(&self, key: &str) -> Option<f64> {
        self.args.get(key).and_then(|v| v.as_f64())
    }

    /// An unsigned attribute from the span's args.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args.get(key).and_then(|v| v.as_u64())
    }
}

/// The spans embedded in an event stream, in stream order.
pub fn spans_from_events(events: &[TelemetryEvent]) -> Vec<TraceSpan> {
    events.iter().filter_map(TraceSpan::from_event).collect()
}

/// Parses a telemetry JSONL file back into its event stream.
///
/// # Errors
///
/// Propagates I/O errors; a line that is not a valid event maps to
/// [`std::io::ErrorKind::InvalidData`] naming the offending line number
/// (the sinks flush on drop, so a healthy run never truncates a line).
pub fn read_events_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<TelemetryEvent>> {
    let text = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: TelemetryEvent = serde_json::from_str(line).map_err(|err| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {err}", lineno + 1),
            )
        })?;
        events.push(event);
    }
    Ok(events)
}

/// The spans embedded in a telemetry JSONL file.
///
/// # Errors
///
/// See [`read_events_jsonl`].
pub fn read_spans_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<TraceSpan>> {
    Ok(spans_from_events(&read_events_jsonl(path)?))
}

/// Per-span-id total duration of direct children, for self-time
/// attribution (`self = duration - child_time`).
pub fn child_time_ns(spans: &[TraceSpan]) -> HashMap<u64, u64> {
    let mut children: HashMap<u64, u64> = HashMap::new();
    for span in spans {
        if span.parent != 0 {
            *children.entry(span.parent).or_insert(0) += span.duration_ns();
        }
    }
    children
}

/// Renders spans as a Chrome Trace Event Format document: one complete
/// (`ph: "X"`) event per span, timestamps in microseconds, thread ids
/// mapped to `tid`, and span attributes (plus `span_id`/`parent`) under
/// `args`.
pub fn chrome_trace(spans: &[TraceSpan]) -> serde_json::Value {
    use serde_json::Value;
    let events: Vec<Value> = spans
        .iter()
        .map(|span| {
            let mut args = vec![
                ("span_id".to_string(), Value::U64(span.id)),
                ("parent".to_string(), Value::U64(span.parent)),
            ];
            if let Some(extra) = span.args.as_map() {
                args.extend(extra.iter().cloned());
            }
            Value::Map(vec![
                ("name".to_string(), Value::Str(span.name.clone())),
                ("cat".to_string(), Value::Str("adq".to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::F64(span.start_ns as f64 / 1e3)),
                (
                    "dur".to_string(),
                    Value::F64(span.duration_ns() as f64 / 1e3),
                ),
                ("pid".to_string(), Value::U64(1)),
                ("tid".to_string(), Value::U64(span.thread)),
                ("args".to_string(), Value::Map(args)),
            ])
        })
        .collect();
    Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ])
}

/// Checks that a parsed JSON document has the Chrome Trace Event shape
/// this crate exports: a non-empty `traceEvents` array whose entries all
/// carry `name`/`cat`/`ph`/`ts`/`dur`/`pid`/`tid`. Returns the event
/// count, or a description of the first violation.
///
/// # Errors
///
/// Returns a human-readable message naming the first malformed entry.
pub fn validate_chrome_trace(doc: &serde_json::Value) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_seq())
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    for (idx, event) in events.iter().enumerate() {
        for key in ["name", "cat", "ph"] {
            if event.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("traceEvents[{idx}] missing string `{key}`"));
            }
        }
        for key in ["ts", "dur", "pid", "tid"] {
            if event.get(key).and_then(|v| v.as_f64()).is_none() {
                return Err(format!("traceEvents[{idx}] missing numeric `{key}`"));
            }
        }
    }
    Ok(events.len())
}

/// The parent-chain path of a span (`root;...;name`), following ids
/// through `by_id`. Parents absent from the slice root the path at the
/// span itself, so partial drains still render.
fn span_path(span: &TraceSpan, by_id: &HashMap<u64, usize>, spans: &[TraceSpan]) -> String {
    let mut names = vec![span.name.as_str()];
    let mut cursor = span.parent;
    // Parent chains are acyclic by construction; the depth cap guards
    // against corrupt input files.
    for _ in 0..128 {
        if cursor == 0 {
            break;
        }
        let Some(&idx) = by_id.get(&cursor) else {
            break;
        };
        names.push(spans[idx].name.as_str());
        cursor = spans[idx].parent;
    }
    names.reverse();
    names.join(";")
}

/// Renders spans as collapsed-stack text (`flamegraph.pl` input): one
/// line per unique parent-chain path, weighted by the path's total
/// self-time in nanoseconds (duration minus direct children). Lines are
/// sorted by path for deterministic output.
pub fn collapsed_stacks(spans: &[TraceSpan]) -> String {
    let by_id: HashMap<u64, usize> = spans
        .iter()
        .enumerate()
        .map(|(idx, s)| (s.id, idx))
        .collect();
    let children = child_time_ns(spans);
    let mut weights: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for span in spans {
        let self_ns = span
            .duration_ns()
            .saturating_sub(children.get(&span.id).copied().unwrap_or(0));
        if self_ns == 0 {
            continue;
        }
        *weights.entry(span_path(span, &by_id, spans)).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (path, weight) in weights {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

/// Writes the Chrome trace JSON for `spans` to `path`.
///
/// # Errors
///
/// Propagates file creation/write errors.
pub fn write_chrome_trace(path: impl AsRef<Path>, spans: &[TraceSpan]) -> std::io::Result<()> {
    let json = serde_json::to_string(&chrome_trace(spans))
        .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err.to_string()))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")
}

/// Writes the collapsed-stack text for `spans` to `path`.
///
/// # Errors
///
/// Propagates file creation/write errors.
pub fn write_collapsed_stacks(path: impl AsRef<Path>, spans: &[TraceSpan]) -> std::io::Result<()> {
    std::fs::write(path, collapsed_stacks(spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start_ns: u64, end_ns: u64) -> TraceSpan {
        TraceSpan {
            id,
            parent,
            thread: 1,
            name: name.to_string(),
            start_ns,
            end_ns,
            args: serde_json::Value::Map(Vec::new()),
        }
    }

    fn sample_tree() -> Vec<TraceSpan> {
        vec![
            span(1, 0, "iteration", 0, 1000),
            span(2, 1, "train", 100, 600),
            span(3, 2, "batch", 150, 400),
            span(4, 1, "evaluate", 700, 900),
        ]
    }

    #[test]
    fn spans_roundtrip_through_events() {
        let original = TraceSpan {
            id: 5,
            parent: 2,
            thread: 3,
            name: "nn.microbatch".to_string(),
            start_ns: 10,
            end_ns: 60,
            args: serde_json::json!({"index": 1}),
        };
        let event = TelemetryEvent::SpanClosed {
            id: original.id,
            parent: original.parent,
            thread: original.thread,
            name: original.name.clone(),
            start_ns: original.start_ns,
            end_ns: original.end_ns,
            args: original.args.clone(),
        };
        assert_eq!(TraceSpan::from_event(&event), Some(original.clone()));
        assert_eq!(
            TraceSpan::from_event(&TelemetryEvent::LayerRemoved {
                iteration: 1,
                layer: 2
            }),
            None
        );
        assert_eq!(spans_from_events(&[event]).len(), 1);
        assert_eq!(original.arg_u64("index"), Some(1));
        assert_eq!(original.duration_ns(), 50);
    }

    #[test]
    fn chrome_trace_has_complete_events_in_microseconds() {
        let doc = chrome_trace(&sample_tree());
        assert_eq!(validate_chrome_trace(&doc), Ok(4));
        let events = doc.get("traceEvents").and_then(|v| v.as_seq()).unwrap();
        let train = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("train"))
            .expect("train event");
        assert_eq!(train.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(train.get("ts").and_then(|v| v.as_f64()), Some(0.1));
        assert_eq!(train.get("dur").and_then(|v| v.as_f64()), Some(0.5));
        let args = train.get("args").expect("args");
        assert_eq!(args.get("span_id").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(args.get("parent").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_chrome_trace(&serde_json::json!({})).is_err());
        assert!(validate_chrome_trace(&serde_json::json!({"traceEvents": []})).is_err());
        let missing_dur = serde_json::json!({
            "traceEvents": [{"name": "x", "cat": "adq", "ph": "X", "ts": 0.0,
                             "pid": 1, "tid": 1}],
        });
        let err = validate_chrome_trace(&missing_dur).unwrap_err();
        assert!(err.contains("dur"), "unexpected message: {err}");
    }

    #[test]
    fn collapsed_stacks_weight_by_self_time() {
        let folded = collapsed_stacks(&sample_tree());
        let lines: Vec<&str> = folded.lines().collect();
        // iteration self = 1000 - (500 + 200); train self = 500 - 250.
        assert_eq!(
            lines,
            vec![
                "iteration 300",
                "iteration;evaluate 200",
                "iteration;train 250",
                "iteration;train;batch 250",
            ]
        );
    }

    #[test]
    fn collapsed_stacks_aggregate_repeated_paths_and_orphans() {
        let spans = vec![
            span(1, 0, "root", 0, 100),
            span(2, 1, "leaf", 0, 30),
            span(3, 1, "leaf", 40, 70),
            // Parent 99 is not in the slice: path roots at the span.
            span(4, 99, "orphan", 0, 10),
        ];
        let folded = collapsed_stacks(&spans);
        assert!(folded.contains("root;leaf 60\n"));
        assert!(folded.contains("orphan 10\n"));
    }

    #[test]
    fn empty_traces_export_cleanly() {
        // An empty span stream renders an empty (but well-formed)
        // document in both formats rather than erroring.
        assert_eq!(collapsed_stacks(&[]), "");
        assert!(child_time_ns(&[]).is_empty());
        let doc = chrome_trace(&[]);
        let events = doc.get("traceEvents").and_then(|v| v.as_seq());
        assert_eq!(events.map(<[serde_json::Value]>::len), Some(0));
        // The validator calls that document out as carrying no events.
        let err = validate_chrome_trace(&doc).unwrap_err();
        assert!(err.contains("empty"), "unexpected message: {err}");
        assert_eq!(spans_from_events(&[]), Vec::<TraceSpan>::new());
    }

    #[test]
    fn orphaned_spans_keep_their_subtrees_renderable() {
        // Parent id 50 was dropped (buffer cap) or lives in an earlier
        // drain: the orphan roots its own subtree in both exporters.
        let spans = vec![
            span(10, 50, "orphan.parent", 0, 100),
            span(11, 10, "orphan.child", 10, 40),
        ];
        let folded = collapsed_stacks(&spans);
        assert!(folded.contains("orphan.parent 70\n"), "folded: {folded}");
        assert!(
            folded.contains("orphan.parent;orphan.child 30\n"),
            "folded: {folded}"
        );
        // The child credit against the missing id must not corrupt any
        // present span's self-time.
        let children = child_time_ns(&spans);
        assert_eq!(children.get(&10), Some(&30));
        assert_eq!(children.get(&50), Some(&100));
        // Chrome trace still renders both spans with their stated parent.
        let doc = chrome_trace(&spans);
        assert_eq!(validate_chrome_trace(&doc), Ok(2));
    }

    #[test]
    fn zero_duration_spans_do_not_distort_self_time() {
        let spans = vec![
            span(1, 0, "root", 0, 100),
            // Zero-duration leaf: no weight of its own, no line.
            span(2, 1, "instant", 50, 50),
            // Zero-duration parent of a real child: its self-time
            // saturates at zero instead of underflowing, and the child's
            // path still runs through it.
            span(3, 1, "empty.parent", 60, 60),
            span(4, 3, "busy.child", 60, 80),
        ];
        let folded = collapsed_stacks(&spans);
        assert!(!folded.contains("instant"), "folded: {folded}");
        assert!(
            !folded.contains("root;empty.parent "),
            "zero-self parent got a line: {folded}"
        );
        assert!(
            folded.contains("root;empty.parent;busy.child 20\n"),
            "folded: {folded}"
        );
        // Root self-time subtracts only *direct* children (both zero
        // here), so the grandchild's 20 ns is attributed once, on its
        // own path, and root keeps its full 100 ns.
        assert!(folded.contains("root 100\n"), "folded: {folded}");
        // Children overlapping beyond the parent's duration saturate.
        let overlapping = vec![span(1, 0, "tiny", 0, 10), span(2, 1, "wide", 0, 50)];
        let folded = collapsed_stacks(&overlapping);
        assert!(!folded.contains("tiny "), "folded: {folded}");
        assert!(folded.contains("tiny;wide 50\n"), "folded: {folded}");
    }

    #[test]
    fn jsonl_files_roundtrip_spans() {
        let dir = std::env::temp_dir().join(format!(
            "adq-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let jsonl = dir.join("run.jsonl");
        let mut text = String::new();
        for trace_span in sample_tree() {
            let event = TelemetryEvent::SpanClosed {
                id: trace_span.id,
                parent: trace_span.parent,
                thread: trace_span.thread,
                name: trace_span.name,
                start_ns: trace_span.start_ns,
                end_ns: trace_span.end_ns,
                args: trace_span.args,
            };
            text.push_str(&serde_json::to_string(&event).unwrap());
            text.push('\n');
        }
        // Non-span events are filtered out, not errors.
        text.push_str(
            &serde_json::to_string(&TelemetryEvent::LayerRemoved {
                iteration: 1,
                layer: 0,
            })
            .unwrap(),
        );
        text.push('\n');
        std::fs::write(&jsonl, &text).expect("write jsonl");
        let spans = read_spans_jsonl(&jsonl).expect("read spans");
        assert_eq!(spans, sample_tree());

        let trace_path = dir.join("run.trace.json");
        write_chrome_trace(&trace_path, &spans).expect("write trace");
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        assert_eq!(validate_chrome_trace(&parsed), Ok(4));

        let folded_path = dir.join("run.folded");
        write_collapsed_stacks(&folded_path, &spans).expect("write folded");
        let folded = std::fs::read_to_string(&folded_path).unwrap();
        assert_eq!(folded, collapsed_stacks(&spans));

        // A corrupt line is an InvalidData error naming the line.
        std::fs::write(&jsonl, "{not json\n").expect("write corrupt");
        let err = read_spans_jsonl(&jsonl).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
