//! A std-only live metrics surface: Prometheus text exposition over TCP.
//!
//! [`MetricsEndpoint`] binds a [`TcpListener`] and serves a snapshot of a
//! [`MetricsRegistry`] — counters, gauges, histograms (with cumulative
//! buckets) — plus the process resource totals from [`crate::alloc`] on
//! every HTTP GET, in Prometheus text exposition format 0.0.4. No HTTP
//! library, no new dependencies: requests are read until the blank line
//! and answered with a fixed `200 OK` whatever the path, which is all a
//! Prometheus scraper (or `adq-watch --scrape`) needs.
//!
//! The endpoint is observation-only: it snapshots atomics on scrape and
//! never blocks the instrumented run (the serving thread owns the
//! listener; scrapes touch the registry through the same lock-free
//! instrument handles the hot paths use).
//!
//! Bind to port 0 to let the OS pick (`local_addr` reports the choice);
//! bench binaries wire this to `ADQ_METRICS_ADDR` and optionally write
//! the bound address to `ADQ_METRICS_PORT_FILE` so CI can find it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::alloc;
use crate::metrics::MetricsRegistry;

/// Prefix every exported series carries, so scraped metrics from several
/// jobs can coexist in one Prometheus instance.
const METRIC_PREFIX: &str = "adq_";

/// Sanitizes a registry metric name (`tensor.matmul`) into a Prometheus
/// metric name (`adq_tensor_matmul`): `[a-zA-Z0-9_:]` pass through,
/// everything else becomes `_`, and a leading digit gains a `_` guard.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + name.len());
    out.push_str(METRIC_PREFIX);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Formats a float the exposition format accepts (`NaN`, `+Inf`, `-Inf`
/// for non-finite values).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

/// Renders `registry` (and, when resource tracking is on, the process
/// resource totals) as Prometheus text exposition format 0.0.4.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counter_values() {
        let name = sanitize_metric_name(&name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in registry.gauge_values() {
        let name = sanitize_metric_name(&name);
        out.push_str(&format!(
            "# TYPE {name} gauge\n{name} {}\n",
            fmt_value(value)
        ));
    }
    for (name, histogram) in registry.histogram_handles() {
        let name = sanitize_metric_name(&name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (bound, count) in histogram.buckets() {
            cumulative += count;
            let le = if bound == u64::MAX {
                "+Inf".to_string()
            } else {
                bound.to_string()
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", histogram.sum()));
        out.push_str(&format!("{name}_count {}\n", histogram.count()));
    }
    if alloc::tracking() {
        let totals = alloc::global_totals();
        for (name, value) in [
            ("resource_alloc_bytes_total", totals.alloc_bytes),
            ("resource_freed_bytes_total", totals.freed_bytes),
            ("resource_allocs_total", totals.allocs),
            ("resource_flops_total", totals.flops),
            ("resource_bytes_moved_total", totals.bytes_moved),
        ] {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in [
            ("resource_heap_current_bytes", totals.heap_current_bytes),
            ("resource_heap_peak_bytes", totals.heap_peak_bytes),
        ] {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
    }
    out
}

/// Validates Prometheus text exposition format: every comment line is a
/// well-formed `# HELP`/`# TYPE`, every sample line parses as
/// `name[{labels}] value`, every histogram family has a `+Inf` bucket,
/// and at least one sample is present. Returns the sample count.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    if text.is_empty() {
        return Err("empty exposition".to_string());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    let valid_name = |name: &str| {
        !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut samples = 0usize;
    let mut histogram_families: Vec<String> = Vec::new();
    let mut inf_buckets: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    let name = parts.next().unwrap_or("");
                    if !valid_name(name) {
                        return Err(format!("line {lineno}: bad HELP metric name {name:?}"));
                    }
                }
                "TYPE" => {
                    let name = parts.next().unwrap_or("");
                    if !valid_name(name) {
                        return Err(format!("line {lineno}: bad TYPE metric name {name:?}"));
                    }
                    let kind = parts.next().unwrap_or("").trim();
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                    }
                    if kind == "histogram" {
                        histogram_families.push(name.to_string());
                    }
                }
                // Free-form comments are legal.
                _ => {}
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|i| open + i)
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                if line[open + 1..close].contains('{') {
                    return Err(format!("line {lineno}: nested '{{' in label set"));
                }
                if line[open..close].matches("le=\"+Inf\"").count() == 1 {
                    if let Some(family) = line[..open].trim().strip_suffix("_bucket") {
                        inf_buckets.push(family.to_string());
                    }
                }
                (line[..open].trim(), line[close + 1..].trim())
            }
            None => {
                let mut parts = line.splitn(2, ' ');
                (
                    parts.next().unwrap_or(""),
                    parts.next().unwrap_or("").trim(),
                )
            }
        };
        if !valid_name(name_part) {
            return Err(format!(
                "line {lineno}: bad sample metric name {name_part:?}"
            ));
        }
        let value = rest.split_whitespace().next().unwrap_or("");
        if value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: unparsable sample value {value:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    for family in &histogram_families {
        if !inf_buckets.contains(family) {
            return Err(format!("histogram {family} has no +Inf bucket"));
        }
    }
    Ok(samples)
}

/// A background TCP server exposing a registry in Prometheus text format.
///
/// Serving starts on [`bind`](MetricsEndpoint::bind) and stops when the
/// endpoint is dropped (or [`shutdown`](MetricsEndpoint::shutdown) is
/// called). Every scrape increments the registry's
/// `telemetry.endpoint.scrapes` counter.
pub struct MetricsEndpoint {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsEndpoint {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `registry`.
    pub fn bind(addr: &str, registry: &'static MetricsRegistry) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("adq-metrics".to_string())
            .spawn(move || serve(listener, registry, &flag))?;
        Ok(MetricsEndpoint {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the OS's pick).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsEndpoint {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: TcpListener, registry: &'static MetricsRegistry, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        registry.counter("telemetry.endpoint.scrapes").inc();
        let _ = answer(stream, registry);
    }
}

/// Reads one HTTP request (headers only) and answers with the metrics
/// body; any I/O error just drops the connection.
fn answer(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut request = Vec::new();
    let mut chunk = [0u8; 1024];
    while !request.windows(4).any(|w| w == b"\r\n\r\n") && request.len() < 16 * 1024 {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&chunk[..n]);
    }
    let body = prometheus_text(registry);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Scrapes `addr` with a minimal HTTP GET and returns the response body.
/// The small std TCP client `adq-watch --scrape` and the CI smoke use.
pub fn scrape_text(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((headers, body)) if headers.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((headers, _)) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "non-200 scrape response: {}",
                headers.lines().next().unwrap_or("")
            ),
        )),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "scrape response had no header/body separator",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked_registry() -> &'static MetricsRegistry {
        Box::leak(Box::new(MetricsRegistry::new()))
    }

    #[test]
    fn sanitizer_maps_registry_names_to_prometheus_names() {
        assert_eq!(sanitize_metric_name("tensor.matmul"), "adq_tensor_matmul");
        assert_eq!(
            sanitize_metric_name("telemetry.sink.write_errors"),
            "adq_telemetry_sink_write_errors"
        );
        assert_eq!(sanitize_metric_name("8bit count"), "adq__8bit_count");
    }

    #[test]
    fn exposition_renders_all_instrument_kinds_and_validates() {
        let registry = MetricsRegistry::new();
        registry.counter("core.train_batches").add(7);
        registry.gauge("run.loss").set(0.125);
        let h = registry.histogram_with_bounds("tensor.matmul", &[100, 1000]);
        h.record(50);
        h.record(5000);
        let text = prometheus_text(&registry);
        assert!(text.contains("# TYPE adq_core_train_batches counter\n"));
        assert!(text.contains("adq_core_train_batches 7\n"));
        assert!(text.contains("adq_run_loss 0.125\n"));
        // Buckets are cumulative and end at +Inf.
        assert!(text.contains("adq_tensor_matmul_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("adq_tensor_matmul_bucket{le=\"1000\"} 1\n"));
        assert!(text.contains("adq_tensor_matmul_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("adq_tensor_matmul_count 2\n"));
        let samples = validate_prometheus_text(&text).expect("valid exposition");
        assert!(samples >= 7, "expected >= 7 samples, got {samples}");
    }

    #[test]
    fn non_finite_gauges_use_exposition_spellings() {
        let registry = MetricsRegistry::new();
        registry.gauge("run.loss").set(f64::NAN);
        registry.gauge("run.hi").set(f64::INFINITY);
        let text = prometheus_text(&registry);
        assert!(text.contains("adq_run_loss NaN\n"));
        assert!(text.contains("adq_run_hi +Inf\n"));
        validate_prometheus_text(&text).expect("non-finite values are legal");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_prometheus_text("").is_err());
        assert!(validate_prometheus_text("no newline at end").is_err());
        assert!(validate_prometheus_text("metric not_a_number\n").is_err());
        assert!(validate_prometheus_text("9starts_with_digit 1\n").is_err());
        assert!(validate_prometheus_text("# TYPE x flumph\nx 1\n").is_err());
        assert!(validate_prometheus_text("unterminated{le=\"1\" 3\n").is_err());
        // A histogram family must expose a +Inf bucket.
        let err = validate_prometheus_text(
            "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n",
        )
        .unwrap_err();
        assert!(err.contains("+Inf"), "unexpected error: {err}");
        // Comment-only expositions carry no samples.
        assert!(validate_prometheus_text("# TYPE x counter\n").is_err());
    }

    #[test]
    fn endpoint_serves_valid_exposition_over_tcp() {
        let registry = leaked_registry();
        registry.counter("smoke.events").add(3);
        registry.gauge("smoke.level").set(2.5);
        let mut endpoint = MetricsEndpoint::bind("127.0.0.1:0", registry).expect("bind");
        let addr = endpoint.local_addr().to_string();
        let body = scrape_text(&addr).expect("scrape");
        validate_prometheus_text(&body).expect("valid exposition");
        assert!(body.contains("adq_smoke_events 3\n"));
        // A second scrape sees the scrape counter from the first.
        let body = scrape_text(&addr).expect("second scrape");
        assert!(body.contains("adq_telemetry_endpoint_scrapes"));
        endpoint.shutdown();
        // After shutdown the listener is gone (connect may succeed briefly
        // on backlog, but a fresh bind to the same port must be possible).
        drop(endpoint);
    }
}
