//! A thread-safe registry of counters, gauges, and fixed-bucket histograms,
//! plus a [`ScopedTimer`] guard that records wall-time into a histogram.
//!
//! Hot paths (`matmul`, `im2col`, quantizer forward, AD metering) resolve
//! their histogram once through [`global`] and keep the `Arc`, so the
//! per-call cost is two `Instant` reads and one atomic bucket increment.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default histogram bucket upper bounds, in nanoseconds: powers of four
/// from 256 ns to ~4.3 s, a range that covers a single quantizer call up
/// to a whole training epoch.
const TIMING_BOUNDS_NS: [u64; 12] = [
    1 << 8,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 32,
];

/// A fixed-bucket histogram of `u64` observations (nanoseconds by
/// convention for timings).
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bound per bucket; observations above the last bound
    /// land in the overflow bucket.
    bounds: Vec<u64>,
    /// One bucket per bound, plus trailing overflow.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation inside the covering bucket, the standard
    /// fixed-bucket estimate: the true quantile is somewhere in the
    /// covering bucket, so the error is bounded by that bucket's width.
    /// Observations in the overflow bucket clamp to the last finite
    /// bound. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the order statistic the quantile asks for.
        let rank = (q * total as f64).ceil().max(1.0);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += in_bucket;
            if (cumulative as f64) < rank {
                continue;
            }
            let last_finite = *self.bounds.last().expect("non-empty bounds") as f64;
            if idx == self.bounds.len() {
                // Overflow bucket: no upper bound to interpolate toward.
                return last_finite;
            }
            let lower = if idx == 0 {
                0.0
            } else {
                self.bounds[idx - 1] as f64
            };
            let upper = self.bounds[idx] as f64;
            let within = (rank - before as f64) / in_bucket as f64;
            return lower + (upper - lower) * within;
        }
        *self.bounds.last().expect("non-empty bounds") as f64
    }

    /// Per-bucket `(upper_bound, count)` pairs; the final entry uses
    /// `u64::MAX` as the overflow bound.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }
}

/// A guard that measures wall-time from construction to drop and records
/// the elapsed nanoseconds into a histogram.
#[must_use = "the timer records on drop; binding it to `_` stops the measurement immediately"]
pub struct ScopedTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl ScopedTimer {
    /// Starts timing into `histogram`.
    pub fn new(histogram: &Arc<Histogram>) -> Self {
        ScopedTimer {
            histogram: Arc::clone(histogram),
            start: Instant::now(),
        }
    }

    /// Starts timing into the globally registered histogram `name`.
    pub fn named(name: &str) -> Self {
        Self::new(&global().histogram(name))
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record(nanos);
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Instruments are created on first use and shared behind `Arc`s, so
/// callers can resolve once and record lock-free afterwards.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(found) = self.counters.read().expect("metrics lock").get(name) {
            return Arc::clone(found);
        }
        Arc::clone(
            self.counters
                .write()
                .expect("metrics lock")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(found) = self.gauges.read().expect("metrics lock").get(name) {
            return Arc::clone(found);
        }
        Arc::clone(
            self.gauges
                .write()
                .expect("metrics lock")
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram named `name` with default timing buckets, created on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_bounds(name, &TIMING_BOUNDS_NS)
    }

    /// The histogram named `name`; `bounds` apply only on first creation.
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(found) = self.histograms.read().expect("metrics lock").get(name) {
            return Arc::clone(found);
        }
        Arc::clone(
            self.histograms
                .write()
                .expect("metrics lock")
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Every counter as `(name, value)`, in name order.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Every gauge as `(name, value)`, in name order.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        self.gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect()
    }

    /// Every histogram as `(name, handle)`, in name order.
    pub fn histogram_handles(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, h)| (name.clone(), Arc::clone(h)))
            .collect()
    }

    /// Serializable snapshot of every instrument's current state.
    pub fn snapshot(&self) -> serde_json::Value {
        let counters: Vec<serde_json::Value> = self
            .counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, c)| serde_json::json!({"name": name, "count": c.get()}))
            .collect();
        let gauges: Vec<serde_json::Value> = self
            .gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, g)| serde_json::json!({"name": name, "value": g.get()}))
            .collect();
        let histograms: Vec<serde_json::Value> = self
            .histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, h)| {
                let buckets: Vec<serde_json::Value> = h
                    .buckets()
                    .into_iter()
                    .filter(|&(_, count)| count > 0)
                    .map(|(bound, count)| serde_json::json!({"le_ns": bound, "count": count}))
                    .collect();
                serde_json::json!({
                    "name": name,
                    "count": h.count(),
                    "sum_ns": h.sum(),
                    "mean_ns": h.mean(),
                    "p50_ns": h.quantile(0.50),
                    "p90_ns": h.quantile(0.90),
                    "p99_ns": h.quantile(0.99),
                    "buckets": buckets,
                })
            })
            .collect();
        serde_json::json!({
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        })
    }
}

/// The process-wide registry used by the pipeline's hot-path timers.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("events");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("events").get(), 5);
        let g = registry.gauge("ad");
        g.set(0.75);
        assert!((registry.gauge("ad").get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with_bounds("t", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 999, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5 + 10 + 11 + 100 + 999 + 5000);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (10, 2)); // 5, 10
        assert_eq!(buckets[1], (100, 2)); // 11, 100
        assert_eq!(buckets[2], (1000, 1)); // 999
        assert_eq!(buckets[3], (u64::MAX, 1)); // 5000 overflow
    }

    #[test]
    fn quantiles_match_a_known_uniform_distribution() {
        let registry = MetricsRegistry::new();
        // Bucket width 100 over uniform 1..=1000: every estimate is
        // within one bucket width of the exact order statistic.
        let bounds: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        let h = registry.histogram_with_bounds("u", &bounds);
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 500.0), (0.90, 900.0), (0.99, 990.0)] {
            let estimate = h.quantile(q);
            assert!(
                (estimate - exact).abs() <= 100.0,
                "q={q}: estimate {estimate} too far from {exact}"
            );
        }
        // Within a single bucket the interpolation is exact for uniform
        // data: rank 250 of 1000 sits at 25% (bucket 201..=300).
        assert!((h.quantile(0.25) - 250.0).abs() <= 1.0);
    }

    #[test]
    fn quantiles_handle_point_masses_and_overflow() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with_bounds("p", &[10, 100]);
        assert_eq!(h.quantile(0.5), 0.0); // empty
        for _ in 0..99 {
            h.record(7);
        }
        h.record(5000); // overflow bucket
                        // p50 lands in the first bucket (0, 10].
        let p50 = h.quantile(0.50);
        assert!(p50 > 0.0 && p50 <= 10.0, "p50 {p50}");
        // p99 still inside the mass at the first bucket (rank 99 of 100).
        assert!(h.quantile(0.99) <= 10.0);
        // p100 hits the overflow observation and clamps to the last
        // finite bound.
        assert_eq!(h.quantile(1.0), 100.0);
        // Out-of-range q clamps instead of panicking.
        assert!(h.quantile(-3.0) <= 10.0);
        assert_eq!(h.quantile(7.5), 100.0);
    }

    #[test]
    fn snapshot_includes_quantile_estimates() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with_bounds("q", &[10, 20, 30, 40]);
        for v in 1..=40u64 {
            h.record(v);
        }
        let snap = registry.snapshot();
        let histogram = &snap
            .get("histograms")
            .and_then(|h| h.as_seq())
            .expect("seq")[0];
        let p50 = histogram
            .get("p50_ns")
            .and_then(|v| v.as_f64())
            .expect("p50");
        let p90 = histogram
            .get("p90_ns")
            .and_then(|v| v.as_f64())
            .expect("p90");
        let p99 = histogram
            .get("p99_ns")
            .and_then(|v| v.as_f64())
            .expect("p99");
        assert!((p50 - 20.0).abs() <= 10.0);
        assert!((p90 - 36.0).abs() <= 10.0);
        assert!(p99 >= p90 && p99 <= 40.0);
    }

    #[test]
    fn scoped_timer_records_into_histogram() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("timer");
        {
            let _t = ScopedTimer::new(&h);
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() > 0);
    }

    #[test]
    fn snapshot_reports_all_instruments() {
        let registry = MetricsRegistry::new();
        registry.counter("n").add(3);
        registry.gauge("v").set(1.5);
        registry.histogram_with_bounds("h", &[100]).record(50);
        let snap = registry.snapshot();
        let counters = snap.get("counters").and_then(|c| c.as_seq()).expect("seq");
        assert_eq!(counters.len(), 1);
        let histograms = snap
            .get("histograms")
            .and_then(|h| h.as_seq())
            .expect("seq");
        assert_eq!(histograms[0].get("count").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let registry = MetricsRegistry::new();
        let a = registry.histogram("x");
        let b = registry.histogram("x");
        a.record(1);
        assert_eq!(b.count(), 1);
    }
}
