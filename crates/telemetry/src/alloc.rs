//! Resource counters and a counting [`GlobalAlloc`] shim.
//!
//! The paper's argument is a resource ledger — energy, memory, and
//! compute per layer (Tables I/IV–VI) — so observability needs more than
//! wall time. This module supplies the raw counters the span layer
//! attributes to Algorithm-1 phases:
//!
//! * **Heap traffic** via [`CountingAllocator`], a [`GlobalAlloc`]
//!   wrapper around [`System`] that binaries opt into with
//!   `#[global_allocator]` (the bench crate does). When tracking is off
//!   it costs one relaxed atomic load per allocation; when on it adds
//!   bytes allocated/freed and allocation counts to the calling thread's
//!   counters, and maintains a process-wide current/high-water heap size.
//! * **Compute traffic** via [`add_flops`] / [`add_bytes_moved`], called
//!   once per kernel invocation (GEMM, `im2col`, fake-quantize, AD
//!   metering) with the call's whole cost — never per element.
//!
//! Counters are monotonic; attribution happens by *differencing*: a
//! [`SpanGuard`](crate::span::SpanGuard) snapshots the thread's counters
//! when it opens and attaches the deltas as span attributes when it
//! closes. Parent spans therefore include same-thread child work
//! automatically, and cross-thread work is carried by the worker's own
//! spans (`nn.microbatch`).
//!
//! Everything is gated on [`tracking`] (set from the `ADQ_RESOURCES`
//! environment variable by [`init_from_env`], or directly via
//! [`set_tracking`]) and is observation-only by contract: enabling
//! tracking must not change a run's numeric results.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static TRACKING: AtomicBool = AtomicBool::new(false);
/// Set the first time the counting allocator counts anything, so report
/// layers can distinguish "no allocations" from "shim not installed".
static ALLOCATOR_ACTIVE: AtomicBool = AtomicBool::new(false);

static GLOBAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_FLOPS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_BYTES_MOVED: AtomicU64 = AtomicU64::new(0);
/// Live (net) heap bytes under tracking; saturating so frees of blocks
/// allocated before tracking was enabled cannot wrap it.
static HEAP_CURRENT: AtomicU64 = AtomicU64::new(0);
static HEAP_PEAK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialised `Cell`s with no destructor: safe to touch from
    // inside the allocator (no lazy allocation, no TLS-dtor recursion).
    static T_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_FREED_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static T_FLOPS: Cell<u64> = const { Cell::new(0) };
    static T_BYTES_MOVED: Cell<u64> = const { Cell::new(0) };
}

/// Whether resource tracking (allocation + FLOP/bytes-moved counting) is
/// active. One relaxed load; the hot-path gate for every counter.
#[inline]
pub fn tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

/// Turns resource tracking on or off (wins over `ADQ_RESOURCES`).
pub fn set_tracking(on: bool) {
    TRACKING.store(on, Ordering::Relaxed);
}

/// Enables tracking from the `ADQ_RESOURCES` environment variable:
/// unset → `default_on`, `0`/`off`/`false` → off, anything else → on.
/// Bench binaries call this with `default_on = true` so resource columns
/// appear without extra flags; `ADQ_RESOURCES=0` opts out.
pub fn init_from_env(default_on: bool) {
    let on = match std::env::var("ADQ_RESOURCES") {
        Ok(raw) => !matches!(raw.trim(), "0" | "off" | "false"),
        Err(_) => default_on,
    };
    set_tracking(on);
}

/// Whether the counting allocator has attributed at least one
/// allocation — i.e. the shim is installed *and* tracking was on while
/// something allocated. Memory attrs are only attached to spans when
/// this holds, so a build without the shim never reports zeros as fact.
#[inline]
pub fn allocator_active() -> bool {
    ALLOCATOR_ACTIVE.load(Ordering::Relaxed)
}

/// Adds `n` floating-point operations to this thread's and the global
/// FLOP counters. Call once per kernel call with the whole cost.
#[inline]
pub fn add_flops(n: u64) {
    if !tracking() {
        return;
    }
    let _ = T_FLOPS.try_with(|c| c.set(c.get().wrapping_add(n)));
    GLOBAL_FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Adds `n` bytes of memory traffic (reads + writes a kernel performs on
/// its operands) to this thread's and the global bytes-moved counters.
#[inline]
pub fn add_bytes_moved(n: u64) {
    if !tracking() {
        return;
    }
    let _ = T_BYTES_MOVED.try_with(|c| c.set(c.get().wrapping_add(n)));
    GLOBAL_BYTES_MOVED.fetch_add(n, Ordering::Relaxed);
}

/// A snapshot of one thread's monotonic resource counters. Subtract two
/// snapshots ([`ThreadCounters::delta_since`]) to attribute the interval
/// between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadCounters {
    /// Heap bytes allocated on this thread (cumulative).
    pub alloc_bytes: u64,
    /// Heap bytes freed on this thread (cumulative).
    pub freed_bytes: u64,
    /// Allocation count on this thread (cumulative).
    pub allocs: u64,
    /// Floating-point operations reported on this thread (cumulative).
    pub flops: u64,
    /// Kernel memory traffic reported on this thread (cumulative).
    pub bytes_moved: u64,
}

impl ThreadCounters {
    /// The change since an earlier snapshot `base` on the same thread.
    pub fn delta_since(&self, base: &ThreadCounters) -> ThreadCounters {
        ThreadCounters {
            alloc_bytes: self.alloc_bytes.wrapping_sub(base.alloc_bytes),
            freed_bytes: self.freed_bytes.wrapping_sub(base.freed_bytes),
            allocs: self.allocs.wrapping_sub(base.allocs),
            flops: self.flops.wrapping_sub(base.flops),
            bytes_moved: self.bytes_moved.wrapping_sub(base.bytes_moved),
        }
    }
}

/// Reads the calling thread's resource counters.
pub fn thread_counters() -> ThreadCounters {
    ThreadCounters {
        alloc_bytes: T_ALLOC_BYTES.with(Cell::get),
        freed_bytes: T_FREED_BYTES.with(Cell::get),
        allocs: T_ALLOCS.with(Cell::get),
        flops: T_FLOPS.with(Cell::get),
        bytes_moved: T_BYTES_MOVED.with(Cell::get),
    }
}

/// Process-wide resource totals, for live metrics export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalTotals {
    /// Heap bytes allocated across all threads (cumulative).
    pub alloc_bytes: u64,
    /// Heap bytes freed across all threads (cumulative).
    pub freed_bytes: u64,
    /// Allocations across all threads (cumulative).
    pub allocs: u64,
    /// Floating-point operations across all threads (cumulative).
    pub flops: u64,
    /// Kernel memory traffic across all threads (cumulative).
    pub bytes_moved: u64,
    /// Live heap bytes right now (tracked allocations only).
    pub heap_current_bytes: u64,
    /// High-water mark of [`Self::heap_current_bytes`].
    pub heap_peak_bytes: u64,
}

/// Reads the process-wide totals.
pub fn global_totals() -> GlobalTotals {
    GlobalTotals {
        alloc_bytes: GLOBAL_ALLOC_BYTES.load(Ordering::Relaxed),
        freed_bytes: GLOBAL_FREED_BYTES.load(Ordering::Relaxed),
        allocs: GLOBAL_ALLOCS.load(Ordering::Relaxed),
        flops: GLOBAL_FLOPS.load(Ordering::Relaxed),
        bytes_moved: GLOBAL_BYTES_MOVED.load(Ordering::Relaxed),
        heap_current_bytes: HEAP_CURRENT.load(Ordering::Relaxed),
        heap_peak_bytes: HEAP_PEAK.load(Ordering::Relaxed),
    }
}

/// The process-wide heap high-water mark (0 until the shim counts).
pub fn heap_peak_bytes() -> u64 {
    HEAP_PEAK.load(Ordering::Relaxed)
}

/// A counting allocator that forwards to [`System`] and, when
/// [`tracking`] is on, attributes heap traffic to the calling thread.
///
/// Install in a binary (or a crate only binaries link) with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: adq_telemetry::alloc::CountingAllocator =
///     adq_telemetry::alloc::CountingAllocator;
/// ```
///
/// The counting paths allocate nothing themselves (const-initialised
/// thread-local cells, relaxed atomics), so the shim cannot recurse.
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn on_alloc(size: usize) {
        if !tracking() {
            return;
        }
        ALLOCATOR_ACTIVE.store(true, Ordering::Relaxed);
        let size = size as u64;
        // `try_with` skips counting during TLS teardown instead of
        // panicking inside the allocator.
        let _ = T_ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
        let _ = T_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
        GLOBAL_ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        let current = HEAP_CURRENT
            .fetch_add(size, Ordering::Relaxed)
            .wrapping_add(size);
        HEAP_PEAK.fetch_max(current, Ordering::Relaxed);
    }

    #[inline]
    fn on_free(size: usize) {
        if !tracking() {
            return;
        }
        let size = size as u64;
        let _ = T_FREED_BYTES.try_with(|c| c.set(c.get().wrapping_add(size)));
        GLOBAL_FREED_BYTES.fetch_add(size, Ordering::Relaxed);
        // Saturate: blocks allocated before tracking was switched on may
        // be freed after, and must not wrap the live-heap gauge.
        let _ = HEAP_CURRENT.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_sub(size))
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_free(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // A grow-or-shrink counts as free(old) + alloc(new), keeping
            // the live-heap gauge exact.
            Self::on_free(layout.size());
            Self::on_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracking state is process-global; tests serialize behind the
    /// crate-wide lock (the span tests toggle the same state).
    fn tracking_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::global_test_lock()
    }

    #[test]
    fn counters_are_inert_when_tracking_is_off() {
        let _guard = tracking_lock();
        set_tracking(false);
        let before = thread_counters();
        add_flops(1_000);
        add_bytes_moved(4_096);
        CountingAllocator::on_alloc(128);
        CountingAllocator::on_free(128);
        assert_eq!(thread_counters(), before);
    }

    #[test]
    fn flop_and_byte_counters_accumulate_per_thread() {
        let _guard = tracking_lock();
        set_tracking(true);
        let base = thread_counters();
        add_flops(250);
        add_bytes_moved(1_024);
        add_flops(750);
        let delta = thread_counters().delta_since(&base);
        set_tracking(false);
        assert_eq!(delta.flops, 1_000);
        assert_eq!(delta.bytes_moved, 1_024);
        assert_eq!(delta.alloc_bytes, 0);
    }

    #[test]
    fn allocator_hooks_update_thread_and_heap_counters() {
        let _guard = tracking_lock();
        set_tracking(true);
        let base = thread_counters();
        let heap_base = global_totals().heap_current_bytes;
        CountingAllocator::on_alloc(4_096);
        CountingAllocator::on_alloc(512);
        CountingAllocator::on_free(512);
        let delta = thread_counters().delta_since(&base);
        let totals = global_totals();
        set_tracking(false);
        assert_eq!(delta.alloc_bytes, 4_608);
        assert_eq!(delta.freed_bytes, 512);
        assert_eq!(delta.allocs, 2);
        assert!(allocator_active());
        assert_eq!(totals.heap_current_bytes, heap_base + 4_096);
        assert!(totals.heap_peak_bytes >= heap_base + 4_608);
        // Restore the live-heap gauge for other tests in this process.
        CountingAllocator::on_free(0);
        let _ = super::HEAP_CURRENT.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
            Some(c.saturating_sub(4_096))
        });
    }

    #[test]
    fn untracked_frees_saturate_instead_of_wrapping() {
        let _guard = tracking_lock();
        set_tracking(true);
        // Free more than was ever tracked: gauge must floor at zero.
        CountingAllocator::on_free(u64::MAX as usize >> 1);
        let totals = global_totals();
        set_tracking(false);
        assert!(totals.heap_current_bytes < (1 << 40), "gauge wrapped");
    }

    #[test]
    fn counting_paths_do_not_allocate_reentrantly() {
        // Smoke: running the hooks from many threads at once must not
        // deadlock or panic (they only touch cells and atomics).
        let _guard = tracking_lock();
        set_tracking(true);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        CountingAllocator::on_alloc(64);
                        add_flops(8);
                        CountingAllocator::on_free(64);
                    }
                });
            }
        });
        set_tracking(false);
    }
}
