//! The typed event stream emitted by the AD-quantization pipeline.
//!
//! Events mirror the lifecycle of Algorithm 1: a run starts, each iteration
//! trains for some epochs (emitting [`TelemetryEvent::EpochCompleted`] and
//! density measurements) until the AD trend saturates, bit-widths are
//! re-assigned from the measured densities (eqn 3), optional pruning and
//! dead-layer removal fire, and the iteration closes with its full record.
//!
//! Bit-widths travel as plain `u32` and the full iteration record as a
//! [`serde_json::Value`] so this crate stays at the bottom of the workspace
//! dependency graph (events can describe `adq-core` types without depending
//! on them).

use serde::{Deserialize, Serialize};

/// One structured event in a run's telemetry stream.
///
/// Serialized form is externally tagged, one JSON object per event, so a
/// JSONL stream can be filtered by tag: `jq 'select(.EpochCompleted)'`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A controller or baseline run began.
    RunStarted {
        /// Human label for the run (e.g. bench binary name).
        run: String,
        /// Serialized `AdqConfig` (or equivalent) manifest.
        config: serde_json::Value,
        /// The seed that makes this run reproducible.
        seed: u64,
    },
    /// One training epoch finished.
    EpochCompleted {
        /// Algorithm-1 iteration this epoch belongs to (1-based, matching `IterationRecord`).
        iteration: usize,
        /// Epoch index within the iteration (1-based, matching `IterationRecord`).
        epoch: usize,
        /// Sample-weighted mean training loss.
        loss: f64,
        /// Training accuracy in `[0, 1]`.
        accuracy: f64,
    },
    /// Per-layer activation densities were measured (eqn 2).
    DensityMeasured {
        /// Algorithm-1 iteration (1-based, matching `IterationRecord`).
        iteration: usize,
        /// Epoch within the iteration at which the measurement was taken.
        epoch: usize,
        /// Per-quantized-layer activation density, in layer order.
        densities: Vec<f64>,
        /// Network-level mean activation density.
        total_ad: f64,
    },
    /// The AD trend stopped improving, ending the iteration's training.
    SaturationDetected {
        /// Algorithm-1 iteration (1-based, matching `IterationRecord`).
        iteration: usize,
        /// Epoch at which saturation was declared.
        epoch: usize,
        /// Trailing epochs inspected by the detector.
        window: usize,
        /// Maximum AD movement tolerated inside the window.
        tolerance: f64,
    },
    /// A layer's bit-width was re-assigned from its density (eqn 3).
    BitWidthAssigned {
        /// Algorithm-1 iteration (1-based, matching `IterationRecord`).
        iteration: usize,
        /// Layer index in the model.
        layer: usize,
        /// Bit-width before re-assignment.
        old_bits: u32,
        /// Bit-width after re-assignment (`new_bits <= old_bits`).
        new_bits: u32,
    },
    /// A layer's channels were pruned from its density (eqn 5).
    LayerPruned {
        /// Algorithm-1 iteration (1-based, matching `IterationRecord`).
        iteration: usize,
        /// Layer index in the model.
        layer: usize,
        /// Channel count before pruning.
        old_channels: usize,
        /// Channel count after pruning.
        new_channels: usize,
    },
    /// A dead (zero-density) layer was removed from the model.
    LayerRemoved {
        /// Algorithm-1 iteration (1-based, matching `IterationRecord`).
        iteration: usize,
        /// Index of the removed layer (pre-removal numbering).
        layer: usize,
    },
    /// An Algorithm-1 iteration finished.
    IterationCompleted {
        /// Algorithm-1 iteration (1-based, matching `IterationRecord`).
        iteration: usize,
        /// Epochs trained during this iteration.
        epochs_trained: usize,
        /// Test accuracy at iteration end.
        test_accuracy: f64,
        /// Serialized `IterationRecord` with the full per-layer detail.
        record: serde_json::Value,
    },
    /// An energy model was evaluated for a network configuration.
    EnergyEstimated {
        /// What was estimated (network/model label).
        label: String,
        /// Total energy in picojoules.
        total_pj: f64,
        /// Energy efficiency relative to a 16-bit baseline (1.0 = equal).
        efficiency_vs_baseline: f64,
    },
    /// A run checkpoint was durably written (atomic rename completed).
    CheckpointSaved {
        /// Last fully completed Algorithm-1 iteration captured by the file.
        iteration: usize,
        /// Filesystem path of the checkpoint file.
        path: String,
        /// Serialized size in bytes (header + payload).
        bytes: u64,
    },
    /// The run's data-parallel worker pool was configured.
    WorkerPoolConfigured {
        /// Effective worker thread count at startup.
        threads: usize,
        /// Microbatch size for intra-batch data parallelism (`None` =
        /// serial training).
        microbatch: Option<usize>,
    },
    /// A run continued from a checkpoint instead of starting fresh.
    RunResumed {
        /// Human label for the run (e.g. bench binary name).
        run: String,
        /// Iteration the resumed run starts at (1-based).
        next_iteration: usize,
        /// Iterations already completed inside the checkpoint.
        completed_iterations: usize,
    },
    /// The run finished.
    RunCompleted {
        /// Iterations executed.
        iterations: usize,
        /// Normalized training complexity (eqn 4).
        training_complexity: f64,
        /// Final test accuracy in `[0, 1]`.
        final_accuracy: f64,
    },
    /// A tracing span closed (see `crate::span`); drained into the sink
    /// in `(start_ns, id)` order.
    SpanClosed {
        /// Process-unique span id (1-based).
        id: u64,
        /// Id of the enclosing span (0 = root).
        parent: u64,
        /// Dense id of the recording thread (1-based, first-use order).
        thread: u64,
        /// Span name, dot-separated by subsystem (`adq.iteration`, ...).
        name: String,
        /// Monotonic start, ns since the process tracing epoch.
        start_ns: u64,
        /// Monotonic end, ns since the process tracing epoch.
        end_ns: u64,
        /// Structured attributes (layer, bits, GEMM m/n/k, ...).
        args: serde_json::Value,
    },
    /// A trace artifact was exported from the buffered spans.
    TraceExported {
        /// Filesystem path of the exported artifact.
        path: String,
        /// Spans included in the export.
        spans: u64,
        /// Spans dropped at buffer caps before the export.
        dropped: u64,
        /// Artifact format (`chrome-trace` or `collapsed-stacks`).
        format: String,
    },
}

impl TelemetryEvent {
    /// The event's tag name as it appears in serialized form.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::RunStarted { .. } => "RunStarted",
            TelemetryEvent::EpochCompleted { .. } => "EpochCompleted",
            TelemetryEvent::DensityMeasured { .. } => "DensityMeasured",
            TelemetryEvent::SaturationDetected { .. } => "SaturationDetected",
            TelemetryEvent::BitWidthAssigned { .. } => "BitWidthAssigned",
            TelemetryEvent::LayerPruned { .. } => "LayerPruned",
            TelemetryEvent::LayerRemoved { .. } => "LayerRemoved",
            TelemetryEvent::IterationCompleted { .. } => "IterationCompleted",
            TelemetryEvent::CheckpointSaved { .. } => "CheckpointSaved",
            TelemetryEvent::WorkerPoolConfigured { .. } => "WorkerPoolConfigured",
            TelemetryEvent::RunResumed { .. } => "RunResumed",
            TelemetryEvent::EnergyEstimated { .. } => "EnergyEstimated",
            TelemetryEvent::RunCompleted { .. } => "RunCompleted",
            TelemetryEvent::SpanClosed { .. } => "SpanClosed",
            TelemetryEvent::TraceExported { .. } => "TraceExported",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            TelemetryEvent::RunStarted {
                run: "test".into(),
                config: serde_json::json!({"initial_bits": 16}),
                seed: 7,
            },
            TelemetryEvent::EpochCompleted {
                iteration: 0,
                epoch: 3,
                loss: 1.25,
                accuracy: 0.5,
            },
            TelemetryEvent::BitWidthAssigned {
                iteration: 1,
                layer: 4,
                old_bits: 16,
                new_bits: 9,
            },
            TelemetryEvent::LayerRemoved {
                iteration: 2,
                layer: 5,
            },
            TelemetryEvent::CheckpointSaved {
                iteration: 2,
                path: "ckpt/iter-0002.ckpt".into(),
                bytes: 4096,
            },
            TelemetryEvent::WorkerPoolConfigured {
                threads: 4,
                microbatch: Some(8),
            },
            TelemetryEvent::RunResumed {
                run: "adq.run".into(),
                next_iteration: 3,
                completed_iterations: 2,
            },
            TelemetryEvent::RunCompleted {
                iterations: 3,
                training_complexity: 0.8,
                final_accuracy: 0.9,
            },
            TelemetryEvent::SpanClosed {
                id: 17,
                parent: 3,
                thread: 2,
                name: "adq.phase.train".into(),
                start_ns: 1_000,
                end_ns: 5_500,
                args: serde_json::json!({"iteration": 1, "epochs": 4}),
            },
            TelemetryEvent::TraceExported {
                path: "results/run.trace.json".into(),
                spans: 128,
                dropped: 0,
                format: "chrome-trace".into(),
            },
        ];
        for event in events {
            let line = serde_json::to_string(&event).expect("serialise");
            let back: TelemetryEvent = serde_json::from_str(&line).expect("deserialise");
            assert_eq!(back, event);
        }
    }

    #[test]
    fn serialized_form_is_externally_tagged() {
        let event = TelemetryEvent::LayerRemoved {
            iteration: 1,
            layer: 2,
        };
        let line = serde_json::to_string(&event).expect("serialise");
        assert_eq!(line, r#"{"LayerRemoved":{"iteration":1,"layer":2}}"#);
        assert_eq!(event.kind(), "LayerRemoved");
    }
}
