//! Property-based tests for Activation Density metering (DESIGN.md §7).

use adq_ad::{DensityMeter, NetworkDensity, SaturationDetector};
use proptest::prelude::*;

proptest! {
    #[test]
    fn density_always_in_unit_interval(values in proptest::collection::vec(-10.0f32..10.0, 0..256)) {
        let mut meter = DensityMeter::new();
        meter.observe_slice(&values);
        let d = meter.density();
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn density_counts_exact_nonzeros(values in proptest::collection::vec(-3i32..3, 1..128)) {
        let floats: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let expected = values.iter().filter(|&&v| v != 0).count() as f64 / values.len() as f64;
        let mut meter = DensityMeter::new();
        meter.observe_slice(&floats);
        prop_assert!((meter.density() - expected).abs() < 1e-12);
    }

    #[test]
    fn merge_order_invariant(
        a in proptest::collection::vec(-2.0f32..2.0, 0..64),
        b in proptest::collection::vec(-2.0f32..2.0, 0..64),
        c in proptest::collection::vec(-2.0f32..2.0, 0..64),
    ) {
        let meter_of = |data: &[f32]| {
            let mut m = DensityMeter::new();
            m.observe_slice(data);
            m
        };
        let mut abc = meter_of(&a);
        abc.merge(&meter_of(&b));
        abc.merge(&meter_of(&c));
        let mut cba = meter_of(&c);
        cba.merge(&meter_of(&b));
        cba.merge(&meter_of(&a));
        prop_assert_eq!(abc, cba);
    }

    #[test]
    fn split_observation_equals_whole(values in proptest::collection::vec(-2.0f32..2.0, 2..128), split in 1usize..127) {
        let split = split.min(values.len() - 1);
        let mut whole = DensityMeter::new();
        whole.observe_slice(&values);
        let mut parts = DensityMeter::new();
        parts.observe_slice(&values[..split]);
        parts.observe_slice(&values[split..]);
        prop_assert_eq!(whole, parts);
    }

    #[test]
    fn network_mean_bounded_by_extremes(densities in proptest::collection::vec(0.0f64..=1.0, 1..20)) {
        let net = NetworkDensity::from_densities(densities.clone());
        let lo = densities.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = densities.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(net.mean() >= lo - 1e-12 && net.mean() <= hi + 1e-12);
    }

    #[test]
    fn saturation_monotone_in_tolerance(
        series in proptest::collection::vec(0.0f64..=1.0, 2..32),
        window in 2usize..6,
        tol in 0.0f64..0.5,
    ) {
        let strict = SaturationDetector::new(window, tol);
        let lax = SaturationDetector::new(window, tol + 0.1);
        if strict.is_saturated(&series) {
            prop_assert!(lax.is_saturated(&series));
        }
    }

    #[test]
    fn constant_series_always_saturates(value in 0.0f64..=1.0, len in 2usize..32, window in 2usize..6) {
        prop_assume!(len >= window);
        let series = vec![value; len];
        prop_assert!(SaturationDetector::new(window, 0.0).is_saturated(&series));
    }
}
