use serde::{Deserialize, Serialize};

/// Decides when an Activation Density series has *saturated* (Fig 1 / the
/// "Break if AD is saturated for all layers" step of Algorithm 1).
///
/// A series is saturated when the last `window` samples all lie within
/// `tolerance` of each other (max − min ≤ tolerance). This is robust to the
/// slow drift and per-epoch noise visible in the paper's Fig 1/3 plots.
///
/// # Example
///
/// ```
/// use adq_ad::SaturationDetector;
///
/// let det = SaturationDetector::new(3, 0.01);
/// assert!(!det.is_saturated(&[0.9, 0.5, 0.4, 0.35]));
/// assert!(det.is_saturated(&[0.9, 0.5, 0.400, 0.401, 0.399]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationDetector {
    window: usize,
    tolerance: f64,
}

impl SaturationDetector {
    /// Creates a detector requiring the last `window` samples to agree
    /// within `tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` or `tolerance` is negative or NaN.
    pub fn new(window: usize, tolerance: f64) -> Self {
        assert!(window >= 2, "saturation window must be at least 2");
        assert!(
            tolerance >= 0.0 && !tolerance.is_nan(),
            "tolerance must be non-negative"
        );
        Self { window, tolerance }
    }

    /// The number of trailing samples inspected.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The maximum spread tolerated inside the window.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Whether the trailing window of `series` has saturated.
    ///
    /// Series shorter than the window are never saturated — the detector
    /// refuses to fire before it has seen enough evidence.
    pub fn is_saturated(&self, series: &[f64]) -> bool {
        if series.len() < self.window {
            return false;
        }
        let tail = &series[series.len() - self.window..];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in tail {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        hi - lo <= self.tolerance
    }
}

impl Default for SaturationDetector {
    /// Window of 5 epochs, tolerance 0.01 — the defaults used by the
    /// workspace's experiments (ablated in `ablation_saturation`).
    fn default() -> Self {
        Self::new(5, 0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_series_not_saturated() {
        let det = SaturationDetector::new(4, 0.1);
        assert!(!det.is_saturated(&[0.5, 0.5, 0.5]));
    }

    #[test]
    fn flat_series_saturated() {
        let det = SaturationDetector::new(3, 0.0);
        assert!(det.is_saturated(&[0.7, 0.7, 0.7]));
    }

    #[test]
    fn only_tail_matters() {
        let det = SaturationDetector::new(2, 0.01);
        assert!(det.is_saturated(&[0.9, 0.1, 0.5, 0.5]));
    }

    #[test]
    fn drifting_series_not_saturated() {
        let det = SaturationDetector::new(3, 0.01);
        assert!(!det.is_saturated(&[0.5, 0.45, 0.40]));
    }

    #[test]
    fn tolerance_is_inclusive() {
        let det = SaturationDetector::new(2, 0.1);
        assert!(det.is_saturated(&[0.5, 0.6]));
        assert!(!det.is_saturated(&[0.5, 0.601]));
    }

    #[test]
    #[should_panic]
    fn window_of_one_panics() {
        SaturationDetector::new(1, 0.1);
    }

    #[test]
    #[should_panic]
    fn negative_tolerance_panics() {
        SaturationDetector::new(2, -0.1);
    }

    #[test]
    fn default_is_five_epochs() {
        let det = SaturationDetector::default();
        assert_eq!(det.window(), 5);
        assert_eq!(det.tolerance(), 0.01);
    }

    #[test]
    fn wider_tolerance_saturates_sooner() {
        let series = [0.5, 0.47, 0.44];
        assert!(!SaturationDetector::new(3, 0.01).is_saturated(&series));
        assert!(SaturationDetector::new(3, 0.1).is_saturated(&series));
    }
}
