use std::sync::{Arc, OnceLock};

use adq_telemetry::{Histogram, ScopedTimer};
use adq_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Wall-time of density-counting passes, recorded into the process-wide
/// `ad.meter` histogram.
fn meter_timer() -> ScopedTimer {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    ScopedTimer::new(HIST.get_or_init(|| adq_telemetry::metrics::global().histogram("ad.meter")))
}

/// Streaming Activation Density counter for a single layer (eqn 2).
///
/// Feed it every activation tensor the layer emits during an epoch; read
/// [`DensityMeter::density`] at the epoch boundary and [`DensityMeter::reset`]
/// for the next one.
///
/// An activation counts as non-zero iff it differs from exactly `0.0` — the
/// natural definition downstream of ReLU, which produces exact zeros.
///
/// # Example
///
/// ```
/// use adq_ad::DensityMeter;
/// use adq_tensor::Tensor;
///
/// let mut meter = DensityMeter::new();
/// meter.observe(&Tensor::from_slice(&[0.0, 3.0]));
/// meter.observe(&Tensor::from_slice(&[0.0, 0.0]));
/// assert_eq!(meter.density(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DensityMeter {
    nonzero: u64,
    total: u64,
}

impl DensityMeter {
    /// Creates a meter with zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates the non-zero/total counts of one activation tensor.
    ///
    /// Activation-sized tensors count in parallel (through
    /// [`adq_tensor::dispatch`]); partial counts are integers, so the
    /// result is exact at any worker count.
    pub fn observe(&mut self, activations: &Tensor) {
        let _timer = meter_timer();
        self.nonzero += activations.count_nonzero() as u64;
        self.total += activations.len() as u64;
    }

    /// Accumulates counts from a raw slice (useful off the tensor path).
    pub fn observe_slice(&mut self, activations: &[f32]) {
        let _timer = meter_timer();
        self.nonzero += adq_tensor::dispatch::count_nonzero_slice(activations) as u64;
        self.total += activations.len() as u64;
    }

    /// Merges another meter's counts into this one (order-invariant).
    pub fn merge(&mut self, other: &DensityMeter) {
        self.nonzero += other.nonzero;
        self.total += other.total;
    }

    /// A meter carrying raw counts — the inverse of reading
    /// [`DensityMeter::nonzero_count`] / [`DensityMeter::total_count`],
    /// used to ship counts between model replicas for an exact
    /// [`DensityMeter::merge`].
    pub fn from_counts(nonzero: u64, total: u64) -> Self {
        Self { nonzero, total }
    }

    /// Activation Density: non-zero / total, or 0 if nothing observed.
    pub fn density(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.nonzero as f64 / self.total as f64
        }
    }

    /// Number of non-zero activations observed.
    pub fn nonzero_count(&self) -> u64 {
        self.nonzero
    }

    /// Total number of activations observed.
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// Whether any activations have been observed.
    pub fn has_observations(&self) -> bool {
        self.total > 0
    }

    /// Clears the counts for a new measurement window.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_meter_reports_zero() {
        let m = DensityMeter::new();
        assert_eq!(m.density(), 0.0);
        assert!(!m.has_observations());
    }

    #[test]
    fn paper_example_100_of_512() {
        // §II-C: 512 neurons, 100 non-zero -> AD = 0.195...
        let mut values = vec![0.0f32; 512];
        for v in values.iter_mut().take(100) {
            *v = 1.0;
        }
        let mut m = DensityMeter::new();
        m.observe_slice(&values);
        assert!((m.density() - 100.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_gives_zero() {
        let mut m = DensityMeter::new();
        m.observe(&Tensor::zeros(&[4, 4]));
        assert_eq!(m.density(), 0.0);
        assert!(m.has_observations());
    }

    #[test]
    fn no_zero_gives_one() {
        let mut m = DensityMeter::new();
        m.observe(&Tensor::ones(&[3, 3]));
        assert_eq!(m.density(), 1.0);
    }

    #[test]
    fn accumulates_across_batches() {
        let mut m = DensityMeter::new();
        m.observe(&Tensor::ones(&[2]));
        m.observe(&Tensor::zeros(&[2]));
        assert_eq!(m.density(), 0.5);
        assert_eq!(m.total_count(), 4);
        assert_eq!(m.nonzero_count(), 2);
    }

    #[test]
    fn merge_equals_sequential_observation() {
        let a_data = Tensor::from_slice(&[0.0, 1.0, 2.0]);
        let b_data = Tensor::from_slice(&[0.0, 0.0, 5.0]);

        let mut seq = DensityMeter::new();
        seq.observe(&a_data);
        seq.observe(&b_data);

        let mut a = DensityMeter::new();
        a.observe(&a_data);
        let mut b = DensityMeter::new();
        b.observe(&b_data);
        a.merge(&b);

        assert_eq!(a, seq);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = DensityMeter::new();
        a.observe_slice(&[1.0, 0.0]);
        let mut b = DensityMeter::new();
        b.observe_slice(&[1.0, 1.0, 0.0]);

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn reset_clears() {
        let mut m = DensityMeter::new();
        m.observe_slice(&[1.0]);
        m.reset();
        assert_eq!(m, DensityMeter::new());
    }

    #[test]
    fn negatives_count_as_nonzero() {
        let mut m = DensityMeter::new();
        m.observe_slice(&[-1.0, 0.0]);
        assert_eq!(m.density(), 0.5);
    }

    #[test]
    fn density_always_in_unit_interval() {
        let mut m = DensityMeter::new();
        for i in 0..100 {
            m.observe_slice(&[i as f32 - 50.0]);
            let d = m.density();
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn from_counts_roundtrips_accessors() {
        let m = DensityMeter::from_counts(7, 20);
        assert_eq!(m.nonzero_count(), 7);
        assert_eq!(m.total_count(), 20);
        assert_eq!(m.density(), 0.35);
    }

    #[test]
    fn parallel_counting_pass_is_exact() {
        // above the dispatch threshold observe_slice counts in parallel;
        // the integer combine must match a serial count exactly
        let n = (1 << 17) + 9;
        let values: Vec<f32> = (0..n)
            .map(|i| if i % 7 == 0 { 0.0 } else { (i as f32).sin() })
            .collect();
        let expected = values.iter().filter(|&&x| x != 0.0).count() as u64;
        let mut m = DensityMeter::new();
        m.observe_slice(&values);
        assert_eq!(m.nonzero_count(), expected);
        assert_eq!(m.total_count(), n as u64);
    }
}
