use serde::{Deserialize, Serialize};

use crate::saturation::SaturationDetector;

/// Per-epoch Activation Density series for one layer.
///
/// This is what the paper plots in Figs 1/3/4 and what the saturation check
/// of Algorithm 1 runs on.
///
/// # Example
///
/// ```
/// use adq_ad::{DensityHistory, SaturationDetector};
///
/// let mut history = DensityHistory::new();
/// for ad in [0.9, 0.6, 0.45, 0.41, 0.405, 0.404] {
///     history.record(ad);
/// }
/// assert!(history.is_saturated(&SaturationDetector::new(3, 0.01)));
/// assert_eq!(history.latest(), Some(0.404));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DensityHistory {
    samples: Vec<f64>,
}

impl DensityHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one epoch's density.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `[0, 1]` or NaN — densities come from
    /// [`crate::DensityMeter`], which can only produce values in range, so an
    /// out-of-range sample indicates a caller bug.
    pub fn record(&mut self, density: f64) {
        assert!(
            (0.0..=1.0).contains(&density),
            "density {density} outside [0, 1]"
        );
        self.samples.push(density);
    }

    /// All recorded samples, oldest first.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<f64> {
        self.samples.last().copied()
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no epochs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Applies a [`SaturationDetector`] to the series.
    pub fn is_saturated(&self, detector: &SaturationDetector) -> bool {
        detector.is_saturated(&self.samples)
    }

    /// Clears the series (used when a new quantization iteration begins and
    /// the saturation clock restarts).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history() {
        let h = DensityHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.latest(), None);
    }

    #[test]
    fn record_appends_in_order() {
        let mut h = DensityHistory::new();
        h.record(0.5);
        h.record(0.4);
        assert_eq!(h.samples(), &[0.5, 0.4]);
        assert_eq!(h.latest(), Some(0.4));
        assert_eq!(h.len(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_density_panics() {
        DensityHistory::new().record(1.5);
    }

    #[test]
    #[should_panic]
    fn nan_density_panics() {
        DensityHistory::new().record(f64::NAN);
    }

    #[test]
    fn saturation_delegates_to_detector() {
        let mut h = DensityHistory::new();
        for d in [0.9, 0.5, 0.5, 0.5] {
            h.record(d);
        }
        assert!(h.is_saturated(&SaturationDetector::new(3, 0.0)));
        assert!(!h.is_saturated(&SaturationDetector::new(4, 0.0)));
    }

    #[test]
    fn clear_restarts_series() {
        let mut h = DensityHistory::new();
        h.record(0.3);
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn boundary_densities_accepted() {
        let mut h = DensityHistory::new();
        h.record(0.0);
        h.record(1.0);
        assert_eq!(h.len(), 2);
    }
}
