use serde::{Deserialize, Serialize};

use crate::meter::DensityMeter;

/// Aggregates per-layer Activation Density into the network-level figures
/// the paper reports.
///
/// Table II/III's "Total AD" column is the *mean of per-layer ADs*; eqn 2's
/// note that AD "can also be calculated for the entire network by
/// accumulating the statistics of all the layers" is the activation-weighted
/// [`NetworkDensity::pooled`] variant. Both are exposed.
///
/// # Example
///
/// ```
/// use adq_ad::{DensityMeter, NetworkDensity};
///
/// let mut a = DensityMeter::new();
/// a.observe_slice(&[1.0, 0.0]); // AD 0.5, 2 activations
/// let mut b = DensityMeter::new();
/// b.observe_slice(&[1.0, 1.0, 1.0, 1.0]); // AD 1.0, 4 activations
///
/// let net = NetworkDensity::from_meters([a, b]);
/// assert_eq!(net.mean(), 0.75);            // (0.5 + 1.0) / 2
/// assert_eq!(net.pooled(), 5.0 / 6.0);     // 5 nonzero of 6 total
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkDensity {
    per_layer: Vec<f64>,
    pooled_nonzero: u64,
    pooled_total: u64,
}

impl NetworkDensity {
    /// Builds network density from per-layer meters.
    pub fn from_meters<I>(meters: I) -> Self
    where
        I: IntoIterator<Item = DensityMeter>,
    {
        let mut per_layer = Vec::new();
        let mut nonzero = 0u64;
        let mut total = 0u64;
        for m in meters {
            per_layer.push(m.density());
            nonzero += m.nonzero_count();
            total += m.total_count();
        }
        Self {
            per_layer,
            pooled_nonzero: nonzero,
            pooled_total: total,
        }
    }

    /// Builds network density directly from per-layer densities (pooled
    /// statistics unavailable; [`NetworkDensity::pooled`] falls back to the
    /// mean).
    pub fn from_densities<I>(densities: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        Self {
            per_layer: densities.into_iter().collect(),
            pooled_nonzero: 0,
            pooled_total: 0,
        }
    }

    /// Per-layer densities, in layer order.
    pub fn per_layer(&self) -> &[f64] {
        &self.per_layer
    }

    /// Unweighted mean of per-layer densities — the paper's "Total AD".
    pub fn mean(&self) -> f64 {
        if self.per_layer.is_empty() {
            0.0
        } else {
            self.per_layer.iter().sum::<f64>() / self.per_layer.len() as f64
        }
    }

    /// Activation-count-weighted density (eqn 2 applied to the whole
    /// network); falls back to [`NetworkDensity::mean`] when pooled counts
    /// are unavailable.
    pub fn pooled(&self) -> f64 {
        if self.pooled_total == 0 {
            self.mean()
        } else {
            self.pooled_nonzero as f64 / self.pooled_total as f64
        }
    }

    /// Number of layers represented.
    pub fn layer_count(&self) -> usize {
        self.per_layer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter(nonzero: usize, zero: usize) -> DensityMeter {
        let mut m = DensityMeter::new();
        m.observe_slice(&vec![1.0; nonzero]);
        m.observe_slice(&vec![0.0; zero]);
        m
    }

    #[test]
    fn empty_network_is_zero() {
        let n = NetworkDensity::from_meters([]);
        assert_eq!(n.mean(), 0.0);
        assert_eq!(n.pooled(), 0.0);
        assert_eq!(n.layer_count(), 0);
    }

    #[test]
    fn mean_is_unweighted() {
        // tiny dense layer + huge sparse layer
        let n = NetworkDensity::from_meters([meter(1, 0), meter(0, 1000)]);
        assert_eq!(n.mean(), 0.5);
    }

    #[test]
    fn pooled_is_weighted() {
        let n = NetworkDensity::from_meters([meter(1, 0), meter(0, 999)]);
        assert!((n.pooled() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn from_densities_mean() {
        let n = NetworkDensity::from_densities([0.2, 0.4, 0.6]);
        assert!((n.mean() - 0.4).abs() < 1e-12);
        // pooled falls back to mean
        assert_eq!(n.pooled(), n.mean());
    }

    #[test]
    fn single_layer_mean_equals_pooled() {
        let n = NetworkDensity::from_meters([meter(3, 1)]);
        assert_eq!(n.mean(), n.pooled());
        assert_eq!(n.mean(), 0.75);
    }

    #[test]
    fn per_layer_preserves_order() {
        let n = NetworkDensity::from_meters([meter(1, 1), meter(1, 0)]);
        assert_eq!(n.per_layer(), &[0.5, 1.0]);
    }
}
