//! Activation Density (AD) measurement — eqn 2 of the paper.
//!
//! ```text
//! AD = #nonzero activations / #total activations
//! ```
//!
//! AD is measured per layer by streaming every (post-ReLU) activation tensor
//! produced while the training set passes through the network. The key
//! empirical observation the paper builds on (its Fig 1) is that per-layer AD
//! *saturates* to a value below 1 as training progresses; the quantization
//! controller in `adq-core` watches for that saturation before every
//! re-quantization step.
//!
//! This crate provides:
//!
//! * [`DensityMeter`] — streaming non-zero/total counts for one layer,
//! * [`DensityHistory`] — per-epoch AD series with [`SaturationDetector`],
//! * [`NetworkDensity`] — aggregation across layers (the "Total AD" column
//!   of Tables II/III).
//!
//! # Example
//!
//! ```
//! use adq_ad::DensityMeter;
//! use adq_tensor::Tensor;
//!
//! let mut meter = DensityMeter::new();
//! meter.observe(&Tensor::from_slice(&[0.0, 1.5, 0.0, 2.0]));
//! assert_eq!(meter.density(), 0.5);
//! ```

mod history;
mod meter;
mod network;
mod saturation;

pub use history::DensityHistory;
pub use meter::DensityMeter;
pub use network::NetworkDensity;
pub use saturation::SaturationDetector;
