#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test suite.
# Run from the repository root; fails fast on the first broken stage.
#
# Usage:
#   ./ci.sh          tier-1 gate (fmt, clippy, build, test) — run on every PR
#   ./ci.sh --full   tier-1 gate plus the #[ignore]d full-size smoke tests
#                    (tests/full_size_smoke.rs: VGG-19 / ResNet-18 at real
#                    geometry). Minutes of CPU, not hours — run before
#                    release tags or after touching the tensor/nn hot paths.
#   ./ci.sh --bench  tier-1 gate plus the criterion kernel and epoch benches
#                    in quick mode. Writes the medians to BENCH_kernels.json
#                    and BENCH_epoch.json, the trace smoke run's per-phase
#                    peak/alloc bytes to BENCH_memory.json, and the serving
#                    load-generator's throughput + latency records to
#                    BENCH_serving.json, at the repo root (the cross-PR perf
#                    + memory trajectory) and fails if anything tracked in a
#                    committed baseline regresses by more than 25%.
set -euo pipefail
cd "$(dirname "$0")"

FULL=0
BENCH=0
for arg in "$@"; do
    case "$arg" in
    --full) FULL=1 ;;
    --bench) BENCH=1 ;;
    *)
        echo "ci.sh: unknown argument '$arg' (supported: --full, --bench)" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
# --workspace: the smoke steps below need the bench binaries
# (table2_quantization, adq-report, adq-watch), which a plain root-package
# build does not link.
cargo build --release --workspace

echo "==> tier-1: cargo test -q"
cargo test -q

# The data-parallel trainer promises bit-identical results at any worker
# count; one extra pass under a small pool exercises the parallel schedule
# everywhere the suite asserts serial numbers.
echo "==> tier-1: cargo test -q (RAYON_NUM_THREADS=2)"
RAYON_NUM_THREADS=2 cargo test -q

# Trace smoke: one Algorithm-1 bench run with tracing, resource counters
# and the live metrics endpoint on must yield a valid Chrome trace, a
# collapsed-stack file, a scrapeable Prometheus page *while running*,
# and an adq-report whose per-iteration totals reconcile with the trace
# within 1%. The bench binaries carry the counting allocator, so the
# report also gets per-phase memory/FLOP attribution.
echo "==> tier-1: trace smoke (ADQ_TRACE=1 + metrics endpoint + adq-report)"
trace_dir="$(mktemp -d)"
(cd "$trace_dir" && ADQ_TRACE=1 ADQ_METRICS_ADDR=127.0.0.1:0 \
    ADQ_METRICS_PORT_FILE="$trace_dir/metrics.port" \
    "$OLDPWD/target/release/table2_quantization" \
    --telemetry "$trace_dir/run.jsonl" >/dev/null) &
smoke_pid=$!
# Scrape the endpoint mid-run: wait for the OS-assigned port to land in
# the port file, then validate the exposition text with adq-watch.
scraped=0
for _ in $(seq 1 100); do
    if [[ -s "$trace_dir/metrics.port" ]]; then
        if ./target/release/adq-watch --scrape "$(cat "$trace_dir/metrics.port")"; then
            scraped=1
            break
        fi
    fi
    if ! kill -0 "$smoke_pid" 2>/dev/null; then break; fi
    sleep 0.1
done
wait "$smoke_pid" || {
    echo "ci: trace smoke run failed" >&2
    exit 1
}
if [[ "$scraped" -ne 1 ]]; then
    echo "ci: metrics endpoint was never scraped during the run" >&2
    exit 1
fi
test -s "$trace_dir/run.trace.json" || {
    echo "ci: trace smoke wrote no Chrome trace" >&2
    exit 1
}
test -s "$trace_dir/run.folded" || {
    echo "ci: trace smoke wrote no collapsed stacks" >&2
    exit 1
}
echo "==> tier-1: adq-watch --once over the run stream"
./target/release/adq-watch --once "$trace_dir/run.jsonl" || {
    echo "ci: adq-watch raised health alerts on a healthy run" >&2
    exit 1
}
./target/release/adq-report --validate-trace "$trace_dir/run.trace.json"
./target/release/adq-report "$trace_dir/run.jsonl" \
    --metrics "$trace_dir/results/table2_quantization_metrics.json" \
    --out "$trace_dir/report.md" \
    --memory-json "$trace_dir/memory.json" \
    --reconcile-trace "$trace_dir/run.trace.json"
test -s "$trace_dir/report.md" || {
    echo "ci: adq-report wrote no markdown report" >&2
    exit 1
}
test -s "$trace_dir/memory.json" || {
    echo "ci: adq-report wrote no per-phase memory snapshot" >&2
    exit 1
}
grep -q "heap peak" "$trace_dir/report.md" || {
    echo "ci: report lacks resource attribution columns" >&2
    exit 1
}
TRACE_SMOKE_DIR="$trace_dir"

# Serving smoke: boot adq-serve with 2 replicas, a deliberately tiny
# admission queue and the request-lifecycle access log on (port-file
# handshake, same idiom as the metrics endpoint), probe it with real
# inference requests over the wire, drive a burst that must observe a
# typed shed frame, confirm the shed counter on the Prometheus page via
# adq-watch --scrape, shut down cleanly, then reconcile the access log
# against the scraped counters and render the per-stage attribution
# report from it.
echo "==> tier-1: serving smoke (adq-serve replicas / probe / shed / scrape / shutdown)"
serve_dir="$(mktemp -d)"
ADQ_METRICS_ADDR=127.0.0.1:0 ADQ_METRICS_PORT_FILE="$serve_dir/metrics.port" \
./target/release/adq-serve serve --addr 127.0.0.1:0 \
    --replicas 2 --queue-cap 1 --max-wait-ms 100 \
    --access-log "$serve_dir/access.jsonl" \
    --port-file "$serve_dir/serve.port" >/dev/null &
serve_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$serve_dir/serve.port" ]] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "ci: adq-serve exited before publishing its port" >&2
        exit 1
    fi
    sleep 0.1
done
serve_addr="$(cat "$serve_dir/serve.port")"
./target/release/adq-serve probe --addr "$serve_addr" --requests 4 || {
    echo "ci: serving probe failed" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
# 8 simultaneous requests against queue-cap 1: admission control must
# shed some with typed frames while answering the rest
./target/release/adq-serve probe --addr "$serve_addr" --burst 8 --expect-shed 1 || {
    echo "ci: serving burst saw no shed response over the wire" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
metrics_addr="$(cat "$serve_dir/metrics.port")"
scrape_out="$(./target/release/adq-watch --scrape "$metrics_addr")" || {
    echo "ci: cannot scrape the serving metrics endpoint" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
echo "$scrape_out" | grep -Eq 'adq_serve_shed_total [1-9]' || {
    echo "ci: adq_serve_shed_total did not advance after the shed burst" >&2
    echo "$scrape_out" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
echo "$scrape_out" | grep -Eq 'adq_serve_replicas 2' || {
    echo "ci: adq_serve_replicas gauge does not report the fan-out" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
echo "$scrape_out" | grep -q 'adq_serve_stage_queue_wait_ns_bucket' || {
    echo "ci: per-stage serving histograms are missing from the scrape" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
}
# the counters the access log must reconcile with, as of this scrape
serve_requests="$(echo "$scrape_out" | awk '$1 == "adq_serve_requests" {print $2}')"
serve_shed="$(echo "$scrape_out" | awk '$1 == "adq_serve_shed_total" {print $2}')"
./target/release/adq-serve shutdown --addr "$serve_addr"
wait "$serve_pid" || {
    echo "ci: adq-serve did not shut down cleanly" >&2
    exit 1
}
echo "==> tier-1: access-log reconciliation + adq-report --serving"
access_log="$serve_dir/access.jsonl"
test -s "$access_log" || {
    echo "ci: adq-serve wrote no access log" >&2
    exit 1
}
# record schema: every request line carries a trace id, an outcome and
# the stage waterfall; the close wrote exactly one summary line
head -n 1 "$access_log" | grep -q '"trace_id"' || {
    echo "ci: access-log records lack trace ids" >&2
    exit 1
}
head -n 1 "$access_log" | grep -q '"queue_wait_ns"' || {
    echo "ci: access-log records lack stage deltas" >&2
    exit 1
}
[[ "$(grep -c '"summary"' "$access_log")" -eq 1 ]] || {
    echo "ci: access log does not end with exactly one summary line" >&2
    exit 1
}
# the summary's exemplars repeat record objects, so count request lines
# as non-summary lines rather than by field
access_records="$(grep -cv '"summary"' "$access_log")"
access_shed="$(grep -c '"outcome":"shed"' "$access_log" || true)"
[[ "$access_records" -eq "$serve_requests" ]] || {
    echo "ci: access log holds $access_records records but serve.requests is $serve_requests" >&2
    exit 1
}
[[ "$access_shed" -ge 1 ]] || {
    echo "ci: the shed burst left no shed record in the access log" >&2
    exit 1
}
# per-stage attribution report over the log; --decompose-within enforces
# that the stage-median sum explains the end-to-end median within 10%
./target/release/adq-report --serving "$access_log" --decompose-within 0.10 \
    >"$serve_dir/serving_report.md" || {
    echo "ci: adq-report --serving failed on the smoke access log" >&2
    cat "$serve_dir/serving_report.md" >&2
    exit 1
}
grep -q "Per-stage latency attribution" "$serve_dir/serving_report.md" || {
    echo "ci: serving report lacks the stage attribution table" >&2
    exit 1
}
# adq-watch must flag the deliberate overload (queue pinned at cap 1
# while the burst shed) from the access log alone — exit 1 is the signal
if ./target/release/adq-watch --once --access-log "$access_log" \
    >"$serve_dir/watch_access.txt" 2>&1; then
    echo "ci: adq-watch --access-log did not flag the deliberate overload" >&2
    exit 1
fi
grep -q "access-log:" "$serve_dir/watch_access.txt" || {
    echo "ci: adq-watch --access-log rendered no stage-breakdown line" >&2
    exit 1
}
# the observation-only contract (identical bytes with the log on/off)
# must stay enforced by tier-1
contract_tests="$(cargo test --release -q -p adq-infer --test access_log -- --list)"
echo "$contract_tests" | grep -q "access_log_does_not_change_response_bytes" || {
    echo "ci: the observation-only contract test is missing from tier-1" >&2
    exit 1
}
rm -rf "$serve_dir"

if [[ "$FULL" -eq 1 ]]; then
    echo "==> full: cargo test --release --test full_size_smoke -- --ignored"
    cargo test --release --test full_size_smoke -- --ignored
fi

if [[ "$BENCH" -eq 1 ]]; then
    echo "==> bench: criterion kernels (quick mode) -> BENCH_kernels.json"
    # Compare against the committed snapshot before overwriting it: the
    # baseline is whatever HEAD has, so the perf trajectory accumulates
    # PR over PR.
    baseline=""
    if git cat-file -e HEAD:BENCH_kernels.json 2>/dev/null; then
        baseline="$(mktemp)"
        git show HEAD:BENCH_kernels.json >"$baseline"
    fi
    CRITERION_JSON="$PWD/BENCH_kernels.json" CRITERION_SAMPLE_SIZE=5 \
        cargo bench -p adq-bench --bench kernels
    if [[ -n "$baseline" ]]; then
        echo "==> bench: regression check vs committed baseline"
        cargo run --release -p adq-bench --bin bench_check -- \
            "$baseline" BENCH_kernels.json --max-regress 0.25 --scratch-within 0.25
        rm -f "$baseline"
    else
        echo "==> bench: no committed baseline yet (self-check only)"
        cargo run --release -p adq-bench --bin bench_check -- \
            BENCH_kernels.json --scratch-within 0.25
    fi

    echo "==> bench: criterion epoch (quick mode) -> BENCH_epoch.json"
    epoch_baseline=""
    if git cat-file -e HEAD:BENCH_epoch.json 2>/dev/null; then
        epoch_baseline="$(mktemp)"
        git show HEAD:BENCH_epoch.json >"$epoch_baseline"
    fi
    CRITERION_JSON="$PWD/BENCH_epoch.json" CRITERION_SAMPLE_SIZE=5 \
        cargo bench -p adq-bench --bench epoch
    if [[ -n "$epoch_baseline" ]]; then
        echo "==> bench: epoch regression check vs committed baseline"
        cargo run --release -p adq-bench --bin bench_check -- \
            "$epoch_baseline" BENCH_epoch.json --max-regress 0.25
        rm -f "$epoch_baseline"
    else
        echo "==> bench: no committed epoch baseline yet (first snapshot)"
    fi

    echo "==> bench: archiving trace-smoke report -> BENCH_report.md"
    cp "$TRACE_SMOKE_DIR/report.md" BENCH_report.md

    echo "==> bench: per-phase memory snapshot -> BENCH_memory.json"
    mem_baseline=""
    if git cat-file -e HEAD:BENCH_memory.json 2>/dev/null; then
        mem_baseline="$(mktemp)"
        git show HEAD:BENCH_memory.json >"$mem_baseline"
    fi
    cp "$TRACE_SMOKE_DIR/memory.json" BENCH_memory.json
    if [[ -n "$mem_baseline" ]]; then
        echo "==> bench: memory regression check vs committed baseline"
        cargo run --release -p adq-bench --bin bench_check -- \
            "$mem_baseline" BENCH_memory.json --key bytes --max-regress 0.25
        rm -f "$mem_baseline"
    else
        echo "==> bench: no committed memory baseline yet (first snapshot)"
    fi

    echo "==> bench: serving load generator -> BENCH_serving.json"
    serving_baseline=""
    if git cat-file -e HEAD:BENCH_serving.json 2>/dev/null; then
        serving_baseline="$(mktemp)"
        git show HEAD:BENCH_serving.json >"$serving_baseline"
    fi
    ./target/release/adq-serve load-gen --concurrency 1,4,8 --replicas 1,2,4 \
        --requests 96 --out BENCH_serving.json
    if [[ -n "$serving_baseline" ]]; then
        echo "==> bench: serving regression check (throughput + tail latency)"
        # ns_per_request = mean wall-clock per completed request (the
        # throughput gate, tight); the second pass gates the p99 tail.
        # Tail quantiles swing ~50% run-to-run on a single-core box, so
        # the p99 cap only catches a tail that at least doubles.
        cargo run --release -p adq-bench --bin bench_check -- \
            "$serving_baseline" BENCH_serving.json \
            --key ns_per_request --max-regress 0.25
        cargo run --release -p adq-bench --bin bench_check -- \
            "$serving_baseline" BENCH_serving.json --key p99_ns --max-regress 1.0
        # server-side queueing tail from the access log (records lacking
        # the key — e.g. the float baseline — are skipped): same loose
        # cap as p99_ns, queue waits swing with scheduling noise
        cargo run --release -p adq-bench --bin bench_check -- \
            "$serving_baseline" BENCH_serving.json \
            --key queue_wait_p99_ns --max-regress 1.0
        rm -f "$serving_baseline"
    else
        echo "==> bench: no committed serving baseline yet (first snapshot)"
    fi
    echo "==> bench: replica-scaling floor (r=2 within 25% of r=1 at c=8)"
    # Self-check against the fresh snapshot: on multi-core boxes two
    # replicas should *beat* one; on the 1-core reference container the
    # extra executor must cost at most the allowed overhead.
    cargo run --release -p adq-bench --bin bench_check -- \
        BENCH_serving.json --key ns_per_request \
        --within serving/int8_batched_c8_r2:serving/int8_batched_c8:0.25
fi

rm -rf "$TRACE_SMOKE_DIR"
echo "ci: all green"
