#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test suite.
# Run from the repository root; fails fast on the first broken stage.
#
# Usage:
#   ./ci.sh          tier-1 gate (fmt, clippy, build, test) — run on every PR
#   ./ci.sh --full   tier-1 gate plus the #[ignore]d full-size smoke tests
#                    (tests/full_size_smoke.rs: VGG-19 / ResNet-18 at real
#                    geometry). Minutes of CPU, not hours — run before
#                    release tags or after touching the tensor/nn hot paths.
#   ./ci.sh --bench  tier-1 gate plus the criterion kernel and epoch benches
#                    in quick mode. Writes the medians to BENCH_kernels.json
#                    and BENCH_epoch.json at the repo root (the cross-PR perf
#                    trajectory) and fails if anything tracked in a committed
#                    baseline regresses by more than 25%.
set -euo pipefail
cd "$(dirname "$0")"

FULL=0
BENCH=0
for arg in "$@"; do
    case "$arg" in
    --full) FULL=1 ;;
    --bench) BENCH=1 ;;
    *)
        echo "ci.sh: unknown argument '$arg' (supported: --full, --bench)" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

# The data-parallel trainer promises bit-identical results at any worker
# count; one extra pass under a small pool exercises the parallel schedule
# everywhere the suite asserts serial numbers.
echo "==> tier-1: cargo test -q (RAYON_NUM_THREADS=2)"
RAYON_NUM_THREADS=2 cargo test -q

# Trace smoke: one Algorithm-1 bench run with tracing on must yield a
# valid Chrome trace, a collapsed-stack file, and an adq-report whose
# per-iteration totals reconcile with the trace within 1%.
echo "==> tier-1: trace smoke (ADQ_TRACE=1 table2 + adq-report)"
trace_dir="$(mktemp -d)"
(cd "$trace_dir" && ADQ_TRACE=1 "$OLDPWD/target/release/table2_quantization" \
    --telemetry "$trace_dir/run.jsonl" >/dev/null)
test -s "$trace_dir/run.trace.json" || {
    echo "ci: trace smoke wrote no Chrome trace" >&2
    exit 1
}
test -s "$trace_dir/run.folded" || {
    echo "ci: trace smoke wrote no collapsed stacks" >&2
    exit 1
}
./target/release/adq-report --validate-trace "$trace_dir/run.trace.json"
./target/release/adq-report "$trace_dir/run.jsonl" \
    --metrics "$trace_dir/results/table2_quantization_metrics.json" \
    --out "$trace_dir/report.md" \
    --reconcile-trace "$trace_dir/run.trace.json"
test -s "$trace_dir/report.md" || {
    echo "ci: adq-report wrote no markdown report" >&2
    exit 1
}
TRACE_SMOKE_DIR="$trace_dir"

if [[ "$FULL" -eq 1 ]]; then
    echo "==> full: cargo test --release --test full_size_smoke -- --ignored"
    cargo test --release --test full_size_smoke -- --ignored
fi

if [[ "$BENCH" -eq 1 ]]; then
    echo "==> bench: criterion kernels (quick mode) -> BENCH_kernels.json"
    # Compare against the committed snapshot before overwriting it: the
    # baseline is whatever HEAD has, so the perf trajectory accumulates
    # PR over PR.
    baseline=""
    if git cat-file -e HEAD:BENCH_kernels.json 2>/dev/null; then
        baseline="$(mktemp)"
        git show HEAD:BENCH_kernels.json >"$baseline"
    fi
    CRITERION_JSON="$PWD/BENCH_kernels.json" CRITERION_SAMPLE_SIZE=5 \
        cargo bench -p adq-bench --bench kernels
    if [[ -n "$baseline" ]]; then
        echo "==> bench: regression check vs committed baseline"
        cargo run --release -p adq-bench --bin bench_check -- \
            "$baseline" BENCH_kernels.json --max-regress 0.25
        rm -f "$baseline"
    else
        echo "==> bench: no committed baseline yet (first snapshot)"
    fi

    echo "==> bench: criterion epoch (quick mode) -> BENCH_epoch.json"
    epoch_baseline=""
    if git cat-file -e HEAD:BENCH_epoch.json 2>/dev/null; then
        epoch_baseline="$(mktemp)"
        git show HEAD:BENCH_epoch.json >"$epoch_baseline"
    fi
    CRITERION_JSON="$PWD/BENCH_epoch.json" CRITERION_SAMPLE_SIZE=5 \
        cargo bench -p adq-bench --bench epoch
    if [[ -n "$epoch_baseline" ]]; then
        echo "==> bench: epoch regression check vs committed baseline"
        cargo run --release -p adq-bench --bin bench_check -- \
            "$epoch_baseline" BENCH_epoch.json --max-regress 0.25
        rm -f "$epoch_baseline"
    else
        echo "==> bench: no committed epoch baseline yet (first snapshot)"
    fi

    echo "==> bench: archiving trace-smoke report -> BENCH_report.md"
    cp "$TRACE_SMOKE_DIR/report.md" BENCH_report.md
fi

rm -rf "$TRACE_SMOKE_DIR"
echo "ci: all green"
