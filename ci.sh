#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test suite.
# Run from the repository root; fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "ci: all green"
