#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test suite.
# Run from the repository root; fails fast on the first broken stage.
#
# Usage:
#   ./ci.sh          tier-1 gate (fmt, clippy, build, test) — run on every PR
#   ./ci.sh --full   tier-1 gate plus the #[ignore]d full-size smoke tests
#                    (tests/full_size_smoke.rs: VGG-19 / ResNet-18 at real
#                    geometry). Minutes of CPU, not hours — run before
#                    release tags or after touching the tensor/nn hot paths.
set -euo pipefail
cd "$(dirname "$0")"

FULL=0
for arg in "$@"; do
    case "$arg" in
    --full) FULL=1 ;;
    *)
        echo "ci.sh: unknown argument '$arg' (supported: --full)" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

if [[ "$FULL" -eq 1 ]]; then
    echo "==> full: cargo test --release --test full_size_smoke -- --ignored"
    cargo test --release --test full_size_smoke -- --ignored
fi

echo "ci: all green"
